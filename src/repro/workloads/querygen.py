"""Query generators modelled on the paper's Table I (OpenStack use cases).

Four categories:

* **placement** — hosts meeting new/migrated VM resource requirements;
* **service status** — hosts by service type (static attribute);
* **tenant report** — hosts belonging to a project id (static attribute);
* **hot spot** — active/idle hosts by CPU utilisation bounds.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.core.query import Query, QueryTerm

#: OpenStack-flavor-like (ram_mb, disk_gb, vcpus) demands, sized so every
#: flavor is satisfiable by the testbed host profile (16 GB / 100 GB / 8 vCPU).
FLAVORS = (
    (512, 1, 1),      # m1.tiny
    (2048, 20, 1),    # m1.small
    (4096, 40, 2),    # m1.medium
    (8192, 60, 4),    # m1.large
    (12288, 80, 8),   # m1.xlarge
)


def placement_query(
    rng: random.Random,
    *,
    limit: int = 10,
    freshness_ms: float = 0.0,
) -> Query:
    """A VM-placement query drawn from the flavor distribution."""
    ram, disk, vcpus = rng.choices(FLAVORS, weights=(10, 35, 30, 18, 7))[0]
    return Query(
        [
            QueryTerm.at_least("ram_mb", ram),
            QueryTerm.at_least("disk_gb", disk),
            QueryTerm.at_least("vcpus", vcpus),
        ],
        limit=limit,
        freshness_ms=freshness_ms,
    )


def grouped_placement_query(
    rng: random.Random,
    *,
    cutoffs: Optional[dict] = None,
    limit: Optional[int] = None,
    freshness_ms: float = 0.0,
) -> Query:
    """A placement query in the paper's directed-pull idiom (§VI).

    "Retrieve nodes with 4 GB of RAM" is expressed as the *range of the
    group containing the demand* — [4096, 6144) with a 2048 cutoff — so
    FOCUS pulls exactly one group family; secondary constraints stay as
    greater-than bounds and are filtered by the nodes themselves.
    """
    cutoffs = cutoffs or {"ram_mb": 2048.0}
    ram, disk, vcpus = rng.choices(FLAVORS, weights=(10, 35, 30, 18, 7))[0]
    cutoff = cutoffs["ram_mb"]
    base = (ram // int(cutoff)) * int(cutoff)
    return Query(
        [
            QueryTerm("ram_mb", lower=float(ram), upper=base + cutoff - 1e-6),
            QueryTerm.at_least("disk_gb", disk),
            QueryTerm.at_least("vcpus", vcpus),
        ],
        limit=limit,
        freshness_ms=freshness_ms,
    )


def service_status_query(rng: random.Random, *, limit: Optional[int] = None) -> Query:
    """Table I 'Verify Service Status': hosts by service type."""
    service = rng.choice(("compute", "scheduler"))
    return Query([QueryTerm.exact("service_type", service)], limit=limit)


def tenant_report_query(rng: random.Random, *, limit: Optional[int] = None) -> Query:
    """Table I 'Tenant Usage Reports': hosts belonging to a project id."""
    project = f"project-{rng.randrange(10)}"
    return Query([QueryTerm.exact("project_id", project)], limit=limit)


def hot_spot_query(rng: random.Random, *, limit: Optional[int] = None) -> Query:
    """Table I 'Hot Spot Detection': active (busy) or idle hosts by CPU."""
    if rng.random() < 0.5:
        return Query([QueryTerm.at_least("cpu_percent", 75.0)], limit=limit)  # active
    return Query([QueryTerm.at_most("cpu_percent", 25.0)], limit=limit)  # idle


def multi_attribute_query(
    rng: random.Random,
    *,
    limit: Optional[int] = None,
    freshness_ms: float = 0.0,
) -> Query:
    """Bounded ranges on several dynamic attributes at once.

    Each range spans a handful of group families, so on a sharded serving
    plane the routed attribute's families usually live on more than one
    shard — the workload's scatter-gather stressor (single-attribute
    placement queries mostly collapse onto one shard).
    """
    ram, _disk, vcpus = rng.choices(FLAVORS, weights=(10, 35, 30, 18, 7))[0]
    cpu_low = rng.choice((0.0, 25.0, 50.0))
    return Query(
        [
            QueryTerm("ram_mb", lower=float(ram), upper=min(ram + 4096.0, 16384.0)),
            QueryTerm("cpu_percent", lower=cpu_low, upper=cpu_low + 50.0),
            QueryTerm("vcpus", lower=float(vcpus), upper=8.0),
        ],
        limit=limit,
        freshness_ms=freshness_ms,
    )


class QueryWorkload:
    """Weighted mix of the Table I query categories.

    ``hot_key_fraction`` adds hot-key skew: that fraction of queries replays
    one of ``hot_set_size`` fixed queries drawn once at construction (the
    cache/replica-friendly head of a Zipf-ish popularity curve). The default
    of 0 draws nothing extra, so existing seeded workload streams are
    byte-identical to the pre-skew generator.
    """

    CATEGORIES = {
        "placement": placement_query,
        "service_status": service_status_query,
        "tenant_report": tenant_report_query,
        "hot_spot": hot_spot_query,
        "multi_attribute": multi_attribute_query,
    }

    #: Categories whose generators take the workload's freshness bound.
    _FRESHNESS_CATEGORIES = frozenset({"placement", "multi_attribute"})

    def __init__(
        self,
        seed: int = 0,
        *,
        weights: Optional[dict] = None,
        limit: int = 10,
        freshness_ms: float = 0.0,
        hot_key_fraction: float = 0.0,
        hot_set_size: int = 8,
    ) -> None:
        self._rng = random.Random(f"querygen/{seed}")
        self.weights = weights or {
            "placement": 0.7,
            "service_status": 0.1,
            "tenant_report": 0.1,
            "hot_spot": 0.1,
        }
        unknown = set(self.weights) - set(self.CATEGORIES)
        if unknown:
            raise ValueError(f"unknown query categories: {sorted(unknown)}")
        self.limit = limit
        self.freshness_ms = freshness_ms
        if not 0.0 <= hot_key_fraction <= 1.0:
            raise ValueError(f"hot_key_fraction must be in [0, 1], got {hot_key_fraction}")
        self.hot_key_fraction = hot_key_fraction
        # The hot set and the skew coin live on their own RNG stream,
        # created only when skew is on: a fraction of 0 must not shift the
        # main stream by a single draw.
        self._hot_rng: Optional[random.Random] = None
        self._hot_set: List[Query] = []
        if hot_key_fraction > 0.0:
            self._hot_rng = random.Random(f"querygen/hot/{seed}")
            self._hot_set = [
                grouped_placement_query(
                    self._hot_rng, limit=limit, freshness_ms=freshness_ms
                )
                for _ in range(hot_set_size)
            ]

    def next_query(self) -> Query:
        if self._hot_rng is not None and self._hot_rng.random() < self.hot_key_fraction:
            return self._hot_rng.choice(self._hot_set)
        category = self._rng.choices(
            list(self.weights.keys()), weights=list(self.weights.values())
        )[0]
        generator = self.CATEGORIES[category]
        if category in self._FRESHNESS_CATEGORIES:
            return generator(self._rng, limit=self.limit, freshness_ms=self.freshness_ms)
        return generator(self._rng, limit=self.limit)

    def batch(self, count: int) -> List[Query]:
        return [self.next_query() for _ in range(count)]

    def __iter__(self) -> Iterator[Query]:
        while True:
            yield self.next_query()
