"""Shared fixtures: a simulator, a network, and helpers to build agents.

Also pins the Hypothesis profile: deadlines are explicit (and disabled in
CI, where machine load made them flaky) and CI runs derandomized, so a
loaded runner can never turn a perf-sensitive property test red.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.sim import Network, Simulator, Topology

settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=1000)
settings.load_profile("ci" if os.environ.get("CI") else "dev")


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def network(sim: Simulator) -> Network:
    return Network(sim, Topology())


@pytest.fixture
def regions(network: Network):
    return [r.name for r in network.topology.regions]
