"""Shared fixtures: a simulator, a network, and helpers to build agents."""

from __future__ import annotations

import pytest

from repro.sim import Network, Simulator, Topology


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def network(sim: Simulator) -> Network:
    return Network(sim, Topology())


@pytest.fixture
def regions(network: Network):
    return [r.name for r in network.topology.regions]
