"""Admission defenses: token bucket, admission queue, circuit breaker
(unit + a Hypothesis state machine), and the overload config validation."""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.admission import (
    AdmissionQueue,
    CircuitBreaker,
    OverloadConfig,
    TokenBucket,
)
from repro.core.config import FocusConfig
from repro.core.cpumodel import ServerCpuModel
from repro.errors import ConfigError
from repro.sim import Simulator


# ---------------------------------------------------------------- TokenBucket

class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, per_client=False)
        assert [bucket.allow(0.0) for _ in range(4)] == [True, True, True, False]
        # 0.1 s at 10 tokens/s refills exactly one token.
        assert bucket.allow(0.1)
        assert not bucket.allow(0.1)
        assert bucket.allowed == 4
        assert bucket.throttled == 2

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, per_client=False)
        bucket.allow(0.0)
        # A long idle stretch must not bank more than `burst` tokens.
        assert [bucket.allow(60.0) for _ in range(3)] == [True, True, False]

    def test_per_client_fairness(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, per_client=True)
        assert bucket.allow(0.0, client="greedy")
        assert not bucket.allow(0.0, client="greedy")
        # The greedy client's exhaustion does not tax anyone else.
        assert bucket.allow(0.0, client="polite")

    def test_shared_bucket_ignores_client(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, per_client=False)
        assert bucket.allow(0.0, client="a")
        assert not bucket.allow(0.0, client="b")


# ------------------------------------------------------------- AdmissionQueue

def _queue(sim, **kwargs):
    model = ServerCpuModel(1.0, per_request_cpu=0.1)
    return AdmissionQueue(sim, model, **kwargs)


def _entry(log, name):
    return (lambda sojourn: log.append((name, "served", round(sojourn, 6))),
            lambda reason: log.append((name, reason)))


class TestAdmissionQueue:
    def test_fifo_serves_in_arrival_order(self):
        sim = Simulator(seed=0)
        queue = _queue(sim, capacity=8, discipline="fifo", deadline=None)
        log = []
        for name in ("a", "b", "c"):
            run, shed = _entry(log, name)
            assert queue.submit(0.1, run, shed)
        sim.run_until(1.0)
        assert [name for name, *_ in log] == ["a", "b", "c"]
        assert queue.admitted == 3
        assert len(queue) == 0

    def test_lifo_serves_freshest_first(self):
        sim = Simulator(seed=0)
        queue = _queue(sim, capacity=8, discipline="lifo", deadline=None)
        log = []
        for name in ("a", "b", "c"):
            run, shed = _entry(log, name)
            queue.submit(0.1, run, shed)
        sim.run_until(1.0)
        # "a" entered service immediately; afterwards the freshest waits.
        assert [name for name, *_ in log] == ["a", "c", "b"]

    def test_capacity_shed_is_immediate(self):
        sim = Simulator(seed=0)
        queue = _queue(sim, capacity=1, discipline="fifo", deadline=None)
        log = []
        runs = [_entry(log, name) for name in ("a", "b", "c")]
        assert queue.submit(0.1, *runs[0])   # in service
        assert queue.submit(0.1, *runs[1])   # queued
        assert not queue.submit(0.1, *runs[2])  # over capacity: shed now
        assert ("c", "queue-full") in log
        assert queue.shed_capacity == 1
        sim.run_until(1.0)
        assert ("a", "served", 0.1) in log and ("b", "served", 0.2) in log

    def test_deadline_shed_at_dequeue(self):
        sim = Simulator(seed=0)
        queue = _queue(sim, capacity=8, discipline="fifo", deadline=0.5)
        log = []
        first, stale = _entry(log, "first"), _entry(log, "stale")
        queue.submit(1.0, *first)   # occupies the lane for a full second
        queue.submit(0.1, *stale)   # will have waited 1 s > 0.5 s deadline
        sim.run_until(2.0)
        assert ("first", "served", 1.0) in log
        assert ("stale", "deadline") in log
        assert queue.shed_deadline == 1

    def test_sojourn_includes_queue_wait(self):
        sim = Simulator(seed=0)
        queue = _queue(sim, capacity=8, discipline="fifo", deadline=None)
        log = []
        queue.submit(0.4, *_entry(log, "a"))
        queue.submit(0.1, *_entry(log, "b"))
        sim.run_until(1.0)
        assert ("b", "served", 0.5) in log  # 0.4 s wait + 0.1 s service

    def test_reset_drops_pending_work(self):
        sim = Simulator(seed=0)
        queue = _queue(sim, capacity=8, discipline="fifo", deadline=None)
        log = []
        queue.submit(0.5, *_entry(log, "a"))
        queue.submit(0.5, *_entry(log, "b"))
        queue.reset()
        assert len(queue) == 0
        assert queue.model.busy_until == 0.0


# ------------------------------------------------------------- CircuitBreaker

def _breaker(**kwargs):
    defaults = dict(failure_threshold=0.5, min_volume=4, window=8,
                    cooldown=5.0, half_open_probes=2)
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestCircuitBreakerUnit:
    def test_stays_closed_below_min_volume(self):
        breaker = _breaker()
        for _ in range(3):
            breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_trips_on_failure_rate(self):
        breaker = _breaker()
        for _ in range(2):
            breaker.record_success(0.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_count == 1
        assert not breaker.allow(1.0)
        assert breaker.rejected == 1

    def test_slow_success_counts_as_failure(self):
        breaker = _breaker(latency_threshold=1.0, min_volume=2)
        breaker.record_success(0.0, latency=5.0)
        breaker.record_success(0.0, latency=5.0)
        assert breaker.state == CircuitBreaker.OPEN

    def test_cooldown_opens_probe_window(self):
        breaker = _breaker()
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(4.9)
        assert breaker.allow(5.1)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_admits_exactly_probe_budget(self):
        breaker = _breaker(half_open_probes=2)
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(6.0)
        assert breaker.allow(6.0)
        assert not breaker.allow(6.0)  # third concurrent probe rejected

    def test_all_probes_succeeding_recloses(self):
        breaker = _breaker(half_open_probes=2)
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(6.0) and breaker.allow(6.0)
        breaker.record_success(6.1)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success(6.2)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_probe_failure_reopens(self):
        breaker = _breaker()
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(6.0)
        breaker.record_failure(6.1)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_count == 2
        # The fresh cooldown starts from the probe failure, not the old trip.
        assert not breaker.allow(10.0)
        assert breaker.allow(11.2)

    def test_peek_does_not_consume_probe_slots(self):
        breaker = _breaker(half_open_probes=1)
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.peek(6.0)          # transitions to half-open...
        assert breaker.peek(6.0)          # ...but claims nothing
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow(6.0)         # the single probe slot is intact
        assert not breaker.peek(6.0)      # and now visibly exhausted

    def test_jittered_cooldown_uses_rng_stream(self):
        import random
        breaker = _breaker(cooldown_jitter=2.0, rng=random.Random(1))
        expected = 5.0 + random.Random(1).random() * 2.0
        for _ in range(4):
            breaker.record_failure(0.0)
        assert not breaker.allow(expected - 0.01)
        assert breaker.allow(expected + 0.01)


class BreakerMachine(RuleBasedStateMachine):
    """The breaker can never wedge and never over-admits probes.

    Random interleavings of time advances, admission attempts, and
    success/failure outcomes must keep three properties: the state is
    always one of the three named states; once the cooldown has elapsed an
    open breaker's next admission check transitions it (open is never
    sticky); and half-open never has more than ``half_open_probes``
    unresolved admitted probes.
    """

    COOLDOWN = 5.0
    PROBES = 2

    def __init__(self):
        super().__init__()
        self.now = 0.0
        self.breaker = CircuitBreaker(
            failure_threshold=0.5, min_volume=3, window=6,
            cooldown=self.COOLDOWN, half_open_probes=self.PROBES,
        )
        self.outstanding_probes = 0
        self.opened_at = None

    def _note_state_change(self):
        if self.breaker.state == CircuitBreaker.OPEN:
            if self.opened_at is None:
                self.opened_at = self.now
        else:
            self.opened_at = None
        if self.breaker.state != CircuitBreaker.HALF_OPEN:
            self.outstanding_probes = 0

    @rule(dt=st.floats(min_value=0.01, max_value=4.0))
    def advance_time(self, dt):
        self.now += dt

    @rule()
    def request(self):
        was_closed = self.breaker.state == CircuitBreaker.CLOSED
        allowed = self.breaker.allow(self.now)
        if was_closed:
            assert allowed, "a closed breaker must admit"
        if allowed and self.breaker.state == CircuitBreaker.HALF_OPEN:
            self.outstanding_probes += 1
        self._note_state_change()

    @rule(ok=st.booleans(), latency=st.floats(min_value=0.0, max_value=1.0))
    def outcome(self, ok, latency):
        if self.breaker.state == CircuitBreaker.HALF_OPEN:
            if self.outstanding_probes == 0:
                return  # nothing in flight to resolve
            self.outstanding_probes -= 1
        if ok:
            self.breaker.record_success(self.now, latency=latency)
        else:
            self.breaker.record_failure(self.now)
        self._note_state_change()

    @rule()
    def cooldown_always_reopens_admission(self):
        """An open breaker past its cooldown must transition on contact."""
        if self.breaker.state != CircuitBreaker.OPEN:
            return
        self.now = max(self.now, (self.opened_at or self.now) + self.COOLDOWN + 0.01)
        # Jitter is 0 here, so the full cooldown bound is exact.
        assert self.breaker.peek(self.now), "open breaker wedged past cooldown"
        assert self.breaker.state == CircuitBreaker.HALF_OPEN
        self._note_state_change()

    @invariant()
    def state_is_valid(self):
        assert self.breaker.state in (
            CircuitBreaker.CLOSED, CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN
        )

    @invariant()
    def probe_budget_respected(self):
        assert self.outstanding_probes <= self.PROBES


TestBreakerStateMachine = BreakerMachine.TestCase
TestBreakerStateMachine.settings = settings(
    max_examples=60, stateful_step_count=60, deadline=None
)


# ------------------------------------------------------------ config gating

class TestOverloadConfigValidation:
    def test_defaults_validate(self):
        OverloadConfig().validate()
        FocusConfig().validate()

    def test_defense_without_cpu_model_rejected(self):
        config = OverloadConfig(throttle_enabled=True)
        with pytest.raises(ConfigError, match="cpu_model_enabled"):
            config.validate()

    def test_cpu_model_requires_master_switch(self):
        config = FocusConfig(
            server_queue_enabled=False,
            overload=OverloadConfig(cpu_model_enabled=True),
        )
        with pytest.raises(ConfigError, match="server_queue_enabled"):
            config.validate()

    def test_breaker_requires_sharded_plane(self):
        config = FocusConfig(
            shards=1,
            server_queue_enabled=True,
            overload=OverloadConfig(
                cpu_model_enabled=True, breaker_enabled=True
            ),
        )
        with pytest.raises(ConfigError, match="shards"):
            config.validate()

    @pytest.mark.parametrize("field,value,match", [
        ("cores", 0.0, "cores"),
        ("per_query_cpu", -1.0, "per_query_cpu"),
        ("max_backlog_seconds", -0.5, "max_backlog_seconds"),
    ])
    def test_bad_cpu_model_values_rejected(self, field, value, match):
        config = OverloadConfig(**{field: value})
        with pytest.raises(ConfigError, match=match):
            config.validate()

    @pytest.mark.parametrize("kwargs,match", [
        (dict(throttle_enabled=True, throttle_rate=0.0), "throttle_rate"),
        (dict(throttle_enabled=True, throttle_burst=0.5), "throttle_burst"),
        (dict(queue_enabled=True, queue_discipline="sjf"), "queue_discipline"),
        (dict(queue_enabled=True, queue_capacity=0), "queue_capacity"),
        (dict(queue_enabled=True, queue_deadline=0.0), "queue_deadline"),
        (dict(bulkhead_enabled=True, bulkhead_query_share=1.0),
         "bulkhead_query_share"),
        (dict(breaker_enabled=True, breaker_failure_threshold=0.0),
         "breaker_failure_threshold"),
        (dict(breaker_enabled=True, breaker_min_volume=0),
         "breaker_min_volume"),
        (dict(breaker_enabled=True, breaker_window=4, breaker_min_volume=8),
         "breaker_window"),
        (dict(breaker_enabled=True, breaker_cooldown=0.0), "breaker_cooldown"),
        (dict(breaker_enabled=True, breaker_half_open_probes=0),
         "breaker_half_open_probes"),
    ])
    def test_bad_defense_values_rejected(self, kwargs, match):
        config = OverloadConfig(cpu_model_enabled=True, **kwargs)
        with pytest.raises(ConfigError, match=match):
            config.validate()

    def test_bench_and_suite_configs_validate(self):
        from repro.harness.failure_suite import _storm_config
        _storm_config().validate()
        _storm_config(shards=1, breaker=False).validate()

    def test_build_shard_plane_fails_fast(self):
        from repro.core.shardplane import build_shard_plane
        sim = Simulator(seed=0)
        config = FocusConfig(
            server_queue_enabled=False,
            overload=OverloadConfig(cpu_model_enabled=True),
        )
        # validate() runs before any process is built, so the bogus network
        # argument is never touched.
        with pytest.raises(ConfigError):
            build_shard_plane(sim, None, region="r0", config=config)
