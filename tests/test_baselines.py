"""Tests for the baseline node-finders: correctness and accounting."""

import pytest

from repro.baselines import (
    HierarchyFinder,
    NaivePullFinder,
    NaivePushFinder,
    RabbitPubFinder,
    RabbitSubFinder,
)
from repro.core.query import Query, QueryTerm
from repro.sim import Network, Simulator
from repro.workloads import node_spec_factory

NUM_NODES = 40


def ground_truth(factory, query, regions):
    matches = set()
    for index in range(NUM_NODES):
        spec = factory(index, regions[index % len(regions)])
        attrs = dict(spec["static"])
        attrs.update(spec["dynamic"])
        attrs["region"] = regions[index % len(regions)]
        if query.matches(attrs):
            matches.add(spec["node_id"])
    return matches


def run_query_against(finder, sim, query, settle=10.0):
    out = []
    finder.query(query, out.append)
    sim.run_until(sim.now + settle)
    assert len(out) == 1
    return out[0]


@pytest.fixture
def factory():
    return node_spec_factory(seed=77)


def build(sim, kind, factory):
    network = Network(sim, record_bandwidth_events=False)
    builders = {
        "push": lambda: NaivePushFinder(sim, network, num_nodes=NUM_NODES, node_factory=factory),
        "pull": lambda: NaivePullFinder(sim, network, num_nodes=NUM_NODES, node_factory=factory),
        "hier": lambda: HierarchyFinder(sim, network, num_nodes=NUM_NODES, node_factory=factory),
        "hier-agg": lambda: HierarchyFinder(
            sim, network, num_nodes=NUM_NODES, node_factory=factory, mode="aggregate"
        ),
        "hier-pred": lambda: HierarchyFinder(
            sim, network, num_nodes=NUM_NODES, node_factory=factory,
            manager_mode="predicate",
        ),
        "mq-pub": lambda: RabbitPubFinder(sim, network, num_nodes=NUM_NODES, node_factory=factory),
        "mq-sub": lambda: RabbitSubFinder(sim, network, num_nodes=NUM_NODES, node_factory=factory),
    }
    finder = builders[kind]()
    regions = [r.name for r in network.topology.regions]
    return finder, regions


QUERY = Query(
    [QueryTerm.at_least("ram_mb", 4096.0), QueryTerm.at_least("disk_gb", 20.0)],
    freshness_ms=0.0,
)


@pytest.mark.parametrize(
    "kind", ["push", "pull", "hier", "hier-agg", "hier-pred", "mq-pub", "mq-sub"]
)
class TestCorrectness:
    def test_matches_ground_truth(self, kind, factory):
        sim = Simulator(seed=99)
        finder, regions = build(sim, kind, factory)
        sim.run_until(5.0)  # pushes propagate
        result = run_query_against(finder, sim, QUERY)
        assert {m["node"] for m in result["matches"]} == ground_truth(
            factory, QUERY, regions
        )

    def test_limit_respected(self, kind, factory):
        sim = Simulator(seed=100)
        finder, _ = build(sim, kind, factory)
        sim.run_until(5.0)
        limited = Query([QueryTerm.at_least("ram_mb", 0.0)], limit=5, freshness_ms=0.0)
        result = run_query_against(finder, sim, limited)
        assert len(result["matches"]) == 5


class TestAccounting:
    def test_push_bandwidth_grows_with_nodes(self, factory):
        def bandwidth(num_nodes):
            sim = Simulator(seed=5)
            network = Network(sim, record_bandwidth_events=False)
            finder = NaivePushFinder(
                sim, network, num_nodes=num_nodes, node_factory=factory
            )
            sim.run_until(5.0)
            finder.reset_server_bandwidth()
            sim.run_until(15.0)
            return finder.server_bandwidth_bytes()

        assert bandwidth(60) > 2.5 * bandwidth(20)

    def test_pull_bandwidth_mostly_query_driven(self, factory):
        sim = Simulator(seed=6)
        network = Network(sim, record_bandwidth_events=False)
        finder = NaivePullFinder(sim, network, num_nodes=30, node_factory=factory)
        sim.run_until(5.0)
        finder.reset_server_bandwidth()
        sim.run_until(10.0)
        idle = finder.server_bandwidth_bytes()
        run_query_against(finder, sim, QUERY)
        assert finder.server_bandwidth_bytes() > max(idle * 5, 1000)

    def test_accounting_must_be_installed(self, sim, network):
        from repro.baselines.base import NodeFinder

        class Incomplete(NodeFinder):
            def server_addresses(self):
                return []

        finder = Incomplete(sim, network)
        with pytest.raises(RuntimeError):
            finder.server_bandwidth_bytes()


class TestHierarchyModes:
    def test_invalid_mode_rejected(self, factory):
        sim = Simulator(seed=7)
        network = Network(sim)
        with pytest.raises(ValueError):
            HierarchyFinder(
                sim, network, num_nodes=4, node_factory=factory, mode="bogus"
            )

    def test_invalid_manager_mode_rejected(self, factory):
        sim = Simulator(seed=8)
        network = Network(sim)
        with pytest.raises(ValueError):
            HierarchyFinder(
                sim, network, num_nodes=4, node_factory=factory,
                manager_mode="bogus",
            )

    def test_projection_ships_more_bytes_than_predicate(self, factory):
        """For a selective query, a predicate-pushdown manager ships almost
        nothing while a projection-only manager still ships every row."""
        selective = Query(
            [QueryTerm.at_least("ram_mb", 15500.0)], freshness_ms=0.0
        )

        def bytes_for(manager_mode):
            sim = Simulator(seed=9)
            network = Network(sim, record_bandwidth_events=False)
            finder = HierarchyFinder(
                sim, network, num_nodes=NUM_NODES, node_factory=factory,
                manager_mode=manager_mode,
            )
            sim.run_until(5.0)
            finder.reset_server_bandwidth()
            run_query_against(finder, sim, selective)
            return finder.server_bandwidth_bytes()

        assert bytes_for("projection") > bytes_for("predicate")
