"""The benchmark gate fails with clear messages, never a KeyError."""

import json

from benchmarks.gate import (
    SHARDS_QUICK_SCALEOUT_FLOOR,
    SHARDS_SCALEOUT_FLOOR,
    check,
    check_shards,
    main,
    write_summary,
)


def kernel_report(*, quick, benches=("event_loop",), checksum="aa", speedup=10.0):
    """A minimal kernel bench report with the gate-relevant keys."""
    return {
        "quick": quick,
        "results": {name: {"speedup": speedup} for name in benches},
        "determinism": {
            "checksum": checksum, "stable": True,
            "checksum_v2": checksum + "v2", "stable_v2": True,
        },
    }


def shards_report(*, quick, checksum="bb", scaleout=5.0):
    """A minimal shard-sweep report with the gate-relevant keys."""
    return {
        "quick": quick,
        "results": {
            "scale_sweep": {"scaleout_8v1": scaleout, "points": {}},
            "hot_replica": {"staleness_bound_respected": True},
        },
        "determinism": {"checksum": checksum, "stable": True},
    }


class TestMissingBenches:
    def test_bench_vanishing_from_candidate_fails_clearly(self):
        baseline = kernel_report(quick=False, benches=("event_loop", "net"))
        candidate = kernel_report(quick=True, benches=("event_loop",))
        failures = check(baseline, candidate)
        assert any("'net'" in f and "missing from the candidate" in f
                   for f in failures)

    def test_candidate_bench_without_baseline_fails_clearly(self):
        baseline = kernel_report(quick=False, benches=("event_loop",))
        candidate = kernel_report(quick=True, benches=("event_loop", "brand_new"))
        failures = check(baseline, candidate)
        assert any("'brand_new'" in f and "missing from the committed baseline" in f
                   for f in failures)

    def test_matching_sets_pass(self):
        baseline = kernel_report(quick=False)
        candidate = kernel_report(quick=True)
        assert check(baseline, candidate) == []


class TestNoKeyErrors:
    def test_empty_reports_fail_without_raising(self):
        failures = check({}, {})
        assert failures  # not deterministic, not quick — but no exception

    def test_shards_empty_reports_fail_without_raising(self):
        failures = check_shards({}, {})
        assert any("scaleout_8v1" in f for f in failures)

    def test_main_reports_missing_checksum_not_keyerror(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        candidate = tmp_path / "cand.json"
        baseline.write_text(json.dumps(kernel_report(quick=False)))
        # A candidate with no determinism block at all must produce gate
        # failures on stderr, not a KeyError traceback.
        candidate.write_text(json.dumps({"quick": True, "results": {}}))
        code = main(["--baseline", str(baseline), "--candidate", str(candidate)])
        assert code == 1
        err = capsys.readouterr().err
        assert "gate FAIL" in err


class TestShardsGate:
    def test_checksum_drift_fails(self):
        failures = check_shards(
            shards_report(quick=False, checksum="aa"),
            shards_report(quick=True, checksum="zz"),
        )
        assert any("checksum drifted" in f for f in failures)

    def test_baseline_below_committed_floor_fails(self):
        failures = check_shards(
            shards_report(quick=False, scaleout=SHARDS_SCALEOUT_FLOOR - 0.5),
            shards_report(quick=True),
        )
        assert any("committed full-mode 8-shard scale-out" in f
                   for f in failures)

    def test_quick_candidate_gets_loose_floor(self):
        ratio = (SHARDS_QUICK_SCALEOUT_FLOOR + SHARDS_SCALEOUT_FLOOR) / 2.0
        ok = check_shards(
            shards_report(quick=False),
            shards_report(quick=True, scaleout=ratio),
        )
        assert ok == []
        bad = check_shards(
            shards_report(quick=False),
            shards_report(quick=True,
                          scaleout=SHARDS_QUICK_SCALEOUT_FLOOR - 0.2),
        )
        assert any("candidate 8-shard scale-out" in f for f in bad)

    def test_full_candidate_held_to_committed_floor(self):
        failures = check_shards(
            shards_report(quick=False),
            shards_report(quick=False, scaleout=SHARDS_SCALEOUT_FLOOR - 0.5),
        )
        assert any("candidate 8-shard scale-out" in f for f in failures)

    def test_staleness_violation_fails(self):
        candidate = shards_report(quick=True)
        candidate["results"]["hot_replica"]["staleness_bound_respected"] = False
        failures = check_shards(shards_report(quick=False), candidate)
        assert any("staleness bound" in f for f in failures)


def parallel_point(**overrides):
    """A gate-relevant swim_full_parallel point; override per test."""
    point = {
        "nodes": 6400, "workers": 4, "cpu_count": 8, "speedup": 2.2,
        "min_speedup": 1.8, "enforced": True, "checksums_match": True,
    }
    point.update(overrides)
    return point


class TestParallelKernel:
    def _pair(self, base_point, cand_point, *, cand_quick=True):
        baseline = kernel_report(quick=False)
        baseline["results"]["swim_full_parallel"] = base_point
        candidate = kernel_report(quick=cand_quick)
        candidate["results"]["swim_full_parallel"] = cand_point
        return baseline, candidate

    def test_checksum_divergence_fails_even_in_quick_mode(self):
        baseline, candidate = self._pair(
            parallel_point(), parallel_point(checksums_match=False)
        )
        failures = check(baseline, candidate)
        assert any("diverged" in f and "candidate" in f for f in failures)

    def test_speedup_floor_enforced_on_full_report_with_cores(self):
        baseline, candidate = self._pair(
            parallel_point(speedup=1.2), parallel_point()
        )
        failures = check(baseline, candidate)
        assert any("acceptance floor" in f and "baseline" in f
                   for f in failures)

    def test_speedup_floor_skipped_without_cores_or_on_quick(self):
        # Baseline from a 1-core box (enforced=False); quick candidate
        # below the floor with cores — neither may fail the gate.
        baseline, candidate = self._pair(
            parallel_point(speedup=0.8, enforced=False),
            parallel_point(speedup=0.7),
        )
        assert check(baseline, candidate) == []

    def test_nightly_stretch_point_gated_too(self):
        baseline, candidate = self._pair(
            parallel_point(),
            parallel_point(stretch=parallel_point(speedup=1.0)),
            cand_quick=False,
        )
        failures = check(baseline, candidate, allow_full_candidate=True)
        assert any("stretch" in f for f in failures)


class TestSummary:
    def test_summary_includes_verdict_and_scaleout(self, tmp_path):
        path = tmp_path / "summary.md"
        write_summary(
            str(path), [],
            kernel=(kernel_report(quick=False), kernel_report(quick=True)),
            shards=(shards_report(quick=False), shards_report(quick=True)),
        )
        text = path.read_text()
        assert "✅ PASS" in text
        assert "8-shard scale-out" in text
        assert "5.00x" in text

    def test_summary_lists_failures(self, tmp_path):
        path = tmp_path / "summary.md"
        write_summary(str(path), ["something broke"], kernel=None, shards=None)
        text = path.read_text()
        assert "❌ FAIL" in text
        assert "something broke" in text
