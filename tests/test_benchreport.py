"""Tests for the benchmark-JSON to markdown report tool."""

import json


from repro.harness.benchreport import extract_tables, main, to_markdown

SAMPLE = {
    "benchmarks": [
        {
            "name": "test_fig7a",
            "group": "fig7a",
            "stats": {"mean": 42.5},
            "extra_info": {
                "tables": [
                    {
                        "title": "Fig. 7a — bandwidth",
                        "headers": ["system", "KB/s"],
                        "rows": [["focus", "34.7"], ["naive-push", "426.2"]],
                    }
                ]
            },
        },
        {"name": "test_no_tables", "stats": {"mean": 1.0}, "extra_info": {}},
    ]
}


class TestExtract:
    def test_extracts_tables(self):
        tables = extract_tables(SAMPLE)
        assert len(tables) == 1
        assert tables[0]["benchmark"] == "test_fig7a"
        assert tables[0]["rows"][0] == ["focus", "34.7"]

    def test_empty_document(self):
        assert extract_tables({}) == []


class TestMarkdown:
    def test_renders_table(self):
        markdown = to_markdown(extract_tables(SAMPLE))
        assert "## Fig. 7a — bandwidth" in markdown
        assert "| system | KB/s |" in markdown
        assert "| focus | 34.7 |" in markdown
        assert "42.5 s wall" in markdown


class TestMain:
    def test_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(SAMPLE))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "# Benchmark results" in out
        assert "naive-push" in out

    def test_usage_error(self, capsys):
        assert main([]) == 2

    def test_no_tables_error(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"benchmarks": []}))
        assert main([str(path)]) == 1
