"""ChaosEngine: each fault kind detects, degrades, and recovers on schedule."""

import pytest

from repro.faults import (
    ChaosEngine,
    ChurnBurst,
    CrashNode,
    DegradeLink,
    FaultPlan,
    PartitionRegions,
    PauseProcess,
    crash_storm,
)
from repro.harness import build_focus_cluster, drain, run_query
from repro.core.query import Query, QueryTerm
from repro.workloads.churn import ChurnController


def small_cluster(num_nodes=8, seed=11, **kwargs):
    scenario = build_focus_cluster(
        num_nodes, seed=seed, warm_start=True,
        record_bandwidth_events=False, **kwargs
    )
    engine = ChaosEngine(
        scenario.sim,
        scenario.network,
        targets={scenario.service.address: scenario.service},
        churn=ChurnController(scenario),
    )
    for agent in scenario.agents:
        engine.track(agent.node_id, agent)
    drain(scenario, 3.0)
    return scenario, engine


def probe(scenario):
    return run_query(
        scenario,
        Query([QueryTerm.at_least("ram_mb", 0.0)], limit=None, freshness_ms=0.0),
    )


class TestPlanValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().add(CrashNode(at=-1.0, target="x"))

    def test_pause_needs_positive_resume(self):
        with pytest.raises(ValueError):
            FaultPlan().add(PauseProcess(at=1.0, target="x", resume_after=0.0))

    def test_events_sort_by_time(self):
        plan = (
            FaultPlan()
            .add(CrashNode(at=9.0, target="b"))
            .add(CrashNode(at=1.0, target="a"))
        )
        assert [e.target for e in plan] == ["a", "b"]

    def test_crash_storm_builder(self):
        plan = crash_storm(["a", "b"], start=2.0, spacing=1.0, restart_after=5.0)
        assert len(plan) == 2
        assert [e.at for e in plan] == [2.0, 3.0]
        assert all(e.restart_after == 5.0 for e in plan)

    def test_empty_plan_is_inert(self):
        scenario, engine = small_cluster(4)
        before = scenario.sim.events_processed
        engine.execute(FaultPlan())
        drain(scenario, 5.0)
        assert engine.log == [] and engine.skipped == []
        # No chaos-originated events entered the run (protocol events only;
        # exact equality with a chaos-free run is held by the smoke gate).
        assert scenario.sim.events_processed > before


class TestCrashRestart:
    def test_node_crash_detected_then_recovers(self):
        scenario, engine = small_cluster()
        victim = scenario.agents[3]
        now = scenario.sim.now
        engine.execute(
            FaultPlan().add(
                CrashNode(at=now + 1.0, target=victim.node_id, restart_after=8.0)
            )
        )
        drain(scenario, 3.0)
        assert not victim.running  # crashed
        response = probe(scenario)
        assert victim.node_id not in response.node_ids  # detect: gone
        drain(scenario, 12.0)
        assert victim.running and victim.registered  # recovered + re-registered
        response = probe(scenario)
        assert victim.node_id in response.node_ids  # recover: visible again
        assert [a for _, a in engine.log] == [
            f"crash {victim.node_id}@{now + 1:g} restart+8",
            f"restart {victim.node_id}",
        ]

    def test_restart_reregisters_serf_endpoints(self):
        scenario, engine = small_cluster()
        victim = scenario.agents[2]
        addresses_before = set(victim.endpoint_addresses())
        assert len(addresses_before) > 1  # manager + at least one serf agent
        now = scenario.sim.now
        engine.execute(
            FaultPlan().add(
                CrashNode(at=now + 1.0, target=victim.node_id, restart_after=4.0)
            )
        )
        drain(scenario, 2.0)
        assert not any(
            scenario.network.is_registered(a) for a in addresses_before
        )
        drain(scenario, 15.0)
        for address in victim.endpoint_addresses():
            assert scenario.network.is_registered(address)
        assert len(victim.memberships) > 0  # rejoined its groups

    def test_server_crash_recovers_from_store(self):
        scenario, engine = small_cluster(with_store=True)
        service = scenario.service
        nodes_before = set(service.registrar.nodes)
        now = scenario.sim.now
        engine.execute(
            FaultPlan().add(
                CrashNode(at=now + 1.0, target=service.address, restart_after=5.0)
            )
        )
        drain(scenario, 3.0)
        assert not service.running
        drain(scenario, 10.0)
        assert service.running
        assert set(service.registrar.nodes) == nodes_before  # store recovery
        assert service.metrics.counter("recoveries").value == 1

    def test_replica_lose_state_wipes_tables(self):
        scenario, engine = small_cluster(with_store=True)
        replica = scenario.store.replicas[0]
        engine.track(replica.address, replica)
        assert replica.tables  # registrations were persisted
        now = scenario.sim.now
        engine.execute(
            FaultPlan().add(
                CrashNode(at=now + 1.0, target=replica.address,
                          restart_after=2.0, lose_state=True)
            )
        )
        drain(scenario, 2.0)
        assert replica.tables == {}
        drain(scenario, 3.0)
        assert replica.running

    def test_crashing_a_dead_target_is_logged_not_fatal(self):
        scenario, engine = small_cluster(4)
        now = scenario.sim.now
        engine.execute(FaultPlan().add(CrashNode(at=now + 1.0, target="nope")))
        drain(scenario, 2.0)
        assert engine.log == []
        assert len(engine.skipped) == 1


class TestPartitionAndDegrade:
    def test_partition_applied_and_healed_on_schedule(self):
        scenario, engine = small_cluster()
        regions = [r.name for r in scenario.network.topology.regions]
        now = scenario.sim.now
        engine.execute(
            FaultPlan().add(
                PartitionRegions(at=now + 1.0, side_a=(regions[0],),
                                 side_b=(regions[1], regions[2]), heal_after=4.0)
            )
        )
        drain(scenario, 2.0)
        blocked = scenario.network._blocked_regions
        assert frozenset((regions[0], regions[1])) in blocked
        assert frozenset((regions[0], regions[2])) in blocked
        drain(scenario, 5.0)
        assert scenario.network._blocked_regions == set()
        assert [a for _, a in engine.log][-1].startswith("heal ")

    def test_degrade_link_applied_and_cleared(self):
        scenario, engine = small_cluster(4)
        a = scenario.agents[0].node_id
        now = scenario.sim.now
        engine.execute(
            FaultPlan().add(
                DegradeLink(at=now + 1.0, src=a, dst="focus",
                            latency_multiplier=5.0, loss_rate=0.25,
                            clear_after=3.0)
            )
        )
        drain(scenario, 2.0)
        assert scenario.network.link_degradation(a, "focus") == (5.0, 0.25)
        drain(scenario, 4.0)
        assert scenario.network.link_degradation(a, "focus") is None


class TestPauseAndChurn:
    def test_pause_freezes_whole_node_then_resumes(self):
        scenario, engine = small_cluster()
        victim = scenario.agents[1]
        now = scenario.sim.now
        engine.execute(
            FaultPlan().add(
                PauseProcess(at=now + 1.0, target=victim.node_id, resume_after=3.0)
            )
        )
        drain(scenario, 2.0)
        assert victim.paused
        for membership in victim.memberships.values():
            assert membership.serf.paused  # the stall freezes serf agents too
        drain(scenario, 4.0)
        assert not victim.paused
        assert not any(m.serf.paused for m in victim.memberships.values())
        # The node never deregistered: it is still queryable after the thaw.
        drain(scenario, 5.0)
        assert victim.node_id in probe(scenario).node_ids

    def test_churn_burst_grows_and_shrinks_the_fleet(self):
        scenario, engine = small_cluster()
        before = {a.node_id for a in scenario.agents if a.running}
        now = scenario.sim.now
        engine.execute(
            FaultPlan().add(ChurnBurst(at=now + 1.0, joins=2, leaves=2,
                                       spacing=0.5))
        )
        drain(scenario, 20.0)
        after = {a.node_id for a in scenario.agents if a.running}
        joined = after - before
        left = before - after
        assert len(joined) == 2 and len(left) == 2
        # Joiners registered with the service like any organic node.
        for node_id in joined:
            assert scenario.agent(node_id).registered

    def test_churn_without_controller_is_skipped(self, sim, network):
        engine = ChaosEngine(sim, network)
        engine.execute(FaultPlan().add(ChurnBurst(at=1.0, joins=1)))
        sim.run_until(5.0)
        assert engine.log == []
        assert len(engine.skipped) == 1
