"""Tests for the focus-repro command-line interface."""

import argparse

import pytest

from repro.cli import build_parser, main, parse_term


class TestTermParsing:
    def test_at_least(self):
        term = parse_term("ram_mb>=4096")
        assert term.name == "ram_mb"
        assert term.lower == 4096.0
        assert term.upper is None

    def test_at_most(self):
        term = parse_term("cpu_percent <= 50")
        assert term.upper == 50.0

    def test_string_equality(self):
        term = parse_term("arch==x86")
        assert term.equals == "x86"

    def test_numeric_equality(self):
        term = parse_term("vcpus==4")
        assert term.lower == term.upper == 4.0

    def test_bad_syntax_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_term("ram_mb !! 4096")

    def test_string_bound_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_term("arch>=fast")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_requires_terms(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip()


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ram_mb" in out
        assert "fanout" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--nodes", "16", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "attribute groups formed" in out
        assert "matches" in out

    def test_query_command(self, capsys):
        assert main([
            "query", "--nodes", "16", "--seed", "3", "--limit", "3",
            "--term", "ram_mb>=1024", "--term", "cpu_percent<=90",
        ]) == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert "node-" in out

    def test_trace_command(self, capsys):
        assert main(["trace", "--nodes", "50", "--events", "40"]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p99" in out

    def test_compare_command(self, capsys):
        assert main([
            "compare", "--nodes", "60", "--queries", "3",
            "--baseline", "naive-push",
        ]) == 0
        out = capsys.readouterr().out
        assert "focus" in out
        assert "naive-push" in out

    def test_chaos_list_tracks_registry(self, capsys):
        from repro.harness.failure_suite import SCENARIOS

        assert main(["chaos", "--scenario", "list"]) == 0
        listed = capsys.readouterr().out.split()
        assert listed == list(SCENARIOS)
        assert "query-storm" in listed and "shard-failover" in listed

    def test_chaos_rejects_unknown_scenario(self, capsys):
        assert main(["chaos", "--scenario", "no-such-scenario"]) == 2
        err = capsys.readouterr().err
        assert "no-such-scenario" in err and "single-node-crash" in err
