"""Tests for node-agent behaviours: moves, representatives, collectors."""


from repro.core.config import FocusConfig
from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, drain, run_query


class TestGroupMoves:
    def test_attribute_change_moves_group(self):
        scenario = build_focus_cluster(16, seed=3, with_store=False)
        drain(scenario, 12.0)
        agent = scenario.agents[0]
        old_group = agent.memberships["ram_mb"].group
        # Push the value far outside the current group's range.
        low, high = agent.memberships["ram_mb"].low, agent.memberships["ram_mb"].high
        new_value = high + 3000.0 if high + 3000.0 < 16384 else low - 3000.0
        agent.set_attribute("ram_mb", new_value)
        drain(scenario, 10.0)
        membership = agent.memberships["ram_mb"]
        assert membership.group != old_group
        assert membership.contains(new_value)

    def test_move_updates_service_view(self):
        scenario = build_focus_cluster(16, seed=4, with_store=False)
        drain(scenario, 12.0)
        agent = scenario.agents[1]
        agent.set_attribute("cpu_percent", (agent.dynamic["cpu_percent"] + 50) % 100)
        drain(scenario, 12.0)
        service_groups = scenario.service.dgm.groups.groups_of_node(agent.node_id)
        agent_groups = {m.group for m in agent.memberships.values()}
        assert {g.name for g in service_groups} == agent_groups

    def test_within_range_change_does_not_move(self):
        scenario = build_focus_cluster(8, seed=5, with_store=False)
        drain(scenario, 10.0)
        agent = scenario.agents[0]
        membership = agent.memberships["disk_gb"]
        group = membership.group
        middle = (membership.low + membership.high) / 2
        agent.set_attribute("disk_gb", middle)
        drain(scenario, 5.0)
        assert agent.memberships["disk_gb"].group == group

    def test_value_changing_mid_move_is_chased(self):
        """If the attribute changes again while a suggestion is in flight,
        the agent keeps moving until its group contains the current value."""
        scenario = build_focus_cluster(16, seed=45, with_store=False)
        drain(scenario, 12.0)
        agent = scenario.agents[3]
        # Two immediate updates: the second lands while the first move's
        # suggestion RPC is still in flight.
        agent.set_attribute("ram_mb", 500.0)
        agent.set_attribute("ram_mb", 15000.0)
        drain(scenario, 15.0)
        membership = agent.memberships["ram_mb"]
        assert membership.contains(15000.0), membership.group

    def test_moved_node_still_queryable(self):
        scenario = build_focus_cluster(16, seed=6, with_store=False)
        drain(scenario, 12.0)
        agent = scenario.agents[2]
        agent.set_attribute("ram_mb", 15000.0)
        drain(scenario, 1.0)  # mid-transition: covered by transition table
        query = Query([QueryTerm.at_least("ram_mb", 14000.0)], freshness_ms=0.0)
        response = run_query(scenario, query)
        assert agent.node_id in response.node_ids


class TestCollector:
    def test_collector_feeds_attributes(self):
        ticks = []

        def collector_factory(agent):
            def collect():
                ticks.append(agent.node_id)
                return {"cpu_percent": 55.5}

            return collect

        scenario = build_focus_cluster(
            4, seed=7, with_store=False, collector_factory=collector_factory
        )
        drain(scenario, 10.0)
        assert ticks
        assert all(a.dynamic["cpu_percent"] == 55.5 for a in scenario.agents)


class TestRepresentatives:
    def test_representative_uploads_member_list(self):
        scenario = build_focus_cluster(12, seed=8, with_store=False)
        drain(scenario, 15.0)
        reports = scenario.service.metrics.get_counter("group_reports")
        assert reports is not None and reports.value > 0

    def test_excess_representatives_trimmed_and_demoted(self):
        """Appoint one rep too many; the DGM trims back to the target and
        the demoted agent stops its report timer after the next reply."""
        scenario = build_focus_cluster(12, seed=9, with_store=False)
        drain(scenario, 15.0)
        service = scenario.service
        group = next(g for g in service.dgm.groups.all_groups() if len(g.members) > 2)
        extra_id = next(n for n in sorted(group.members) if n not in group.representatives)
        group.representatives.add(extra_id)
        service.dgm._send_appointment(group, extra_id)
        drain(scenario, scenario.config.report_interval * 3 + 2.0)
        target = scenario.config.representatives_per_group
        group_after = service.dgm.groups.get(group.name)
        assert len(group_after.representatives) == target
        reporting = 0
        for node_id in group.members:
            agent = scenario.agent(node_id)
            for membership in agent.memberships.values():
                if membership.group == group.name and membership.report_timer is not None:
                    reporting += 1
        assert reporting == target

    def test_new_representative_appointed_after_crash(self):
        scenario = build_focus_cluster(12, seed=10, with_store=False)
        drain(scenario, 15.0)
        service = scenario.service
        group = next(g for g in service.dgm.groups.all_groups() if len(g.members) >= 3)
        rep_id = next(iter(group.representatives))
        scenario.agent(rep_id).stop()
        drain(scenario, 40.0)  # failure detection + next reports
        group_after = service.dgm.groups.get(group.name)
        assert group_after.representatives
        assert rep_id not in group_after.representatives


class TestRegistrationRetry:
    def test_agent_retries_until_service_up(self, sim, network, regions):
        from repro.core.agent import NodeAgent
        from repro.core.service import FocusService

        agent = NodeAgent(
            sim, network, "n1", regions[0], "focus",
            dynamic={"ram_mb": 1000.0}, config=FocusConfig(),
        )
        agent.start()
        sim.run_until(5.0)
        assert not agent.registered
        service = FocusService(sim, network, region=regions[0], config=agent.config)
        service.start()
        sim.run_until(20.0)
        assert agent.registered
