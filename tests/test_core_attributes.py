"""Unit tests for the attribute schema."""

import pytest

from repro.core.attributes import (
    AttributeKind,
    AttributeSchema,
    AttributeSpec,
    openstack_schema,
)
from repro.errors import GroupError


class TestSpec:
    def test_dynamic_requires_cutoff(self):
        with pytest.raises(GroupError):
            AttributeSpec("x", AttributeKind.DYNAMIC)

    def test_dynamic_cutoff_must_be_positive(self):
        with pytest.raises(GroupError):
            AttributeSpec("x", AttributeKind.DYNAMIC, cutoff=0)

    def test_static_rejects_cutoff(self):
        with pytest.raises(GroupError):
            AttributeSpec("x", AttributeKind.STATIC, cutoff=5.0)

    def test_min_above_max_rejected(self):
        with pytest.raises(GroupError):
            AttributeSpec("x", AttributeKind.DYNAMIC, cutoff=1.0,
                          min_value=10, max_value=5)

    def test_clamp(self):
        spec = AttributeSpec("x", AttributeKind.DYNAMIC, cutoff=1.0,
                             min_value=0, max_value=10)
        assert spec.clamp(-5) == 0
        assert spec.clamp(15) == 10
        assert spec.clamp(5) == 5


class TestSchema:
    def test_add_and_get(self):
        schema = AttributeSchema()
        spec = AttributeSpec("ram", AttributeKind.DYNAMIC, cutoff=2048.0)
        schema.add(spec)
        assert schema.get("ram") is spec
        assert "ram" in schema

    def test_duplicate_rejected(self):
        schema = AttributeSchema()
        schema.add(AttributeSpec("a", AttributeKind.STATIC))
        with pytest.raises(GroupError):
            schema.add(AttributeSpec("a", AttributeKind.STATIC))

    def test_unknown_get_raises(self):
        with pytest.raises(GroupError):
            AttributeSchema().get("missing")
        assert AttributeSchema().maybe_get("missing") is None

    def test_dynamic_static_partition(self):
        schema = openstack_schema()
        dynamic = set(schema.dynamic())
        static = set(schema.static())
        assert dynamic & static == set()
        assert len(dynamic) + len(static) == len(schema)

    def test_cutoffs(self):
        cutoffs = openstack_schema().cutoffs()
        assert cutoffs["cpu_percent"] == 25.0
        assert cutoffs["ram_mb"] == 2048.0
        assert "arch" not in cutoffs


class TestPaperSchema:
    def test_paper_cutoffs(self):
        """§X-A: {CPU usage: 25%, vCPUs: 2, RAM_MB: 2048MB, disk: 5GB}."""
        schema = openstack_schema()
        assert schema.get("cpu_percent").cutoff == 25.0
        assert schema.get("vcpus").cutoff == 2.0
        assert schema.get("ram_mb").cutoff == 2048.0
        assert schema.get("disk_gb").cutoff == 5.0

    def test_four_dynamic_attributes(self):
        assert len(openstack_schema().dynamic()) == 4
