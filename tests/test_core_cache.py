"""Unit tests for the query response cache."""

from repro.core.cache import QueryCache
from repro.core.query import Query, QueryTerm


def q(freshness_ms=1000.0, limit=None, lower=1.0):
    return Query([QueryTerm.at_least("x", lower)], limit=limit, freshness_ms=freshness_ms)


class TestFreshness:
    def test_hit_within_freshness(self):
        cache = QueryCache()
        cache.store(q(), [{"node": "a"}], now=10.0)
        assert cache.lookup(q(), now=10.5) == [{"node": "a"}]

    def test_miss_when_stale(self):
        cache = QueryCache()
        cache.store(q(), [{"node": "a"}], now=10.0)
        assert cache.lookup(q(freshness_ms=100.0), now=10.5) is None

    def test_zero_freshness_always_bypasses(self):
        cache = QueryCache()
        cache.store(q(), [{"node": "a"}], now=10.0)
        assert cache.lookup(q(freshness_ms=0.0), now=10.0) is None

    def test_miss_on_unknown_query(self):
        assert QueryCache().lookup(q(), now=0.0) is None

    def test_different_bounds_are_different_entries(self):
        cache = QueryCache()
        cache.store(q(lower=1.0), [{"node": "a"}], now=0.0)
        assert cache.lookup(q(lower=2.0), now=0.1) is None


class TestEviction:
    def test_lru_eviction(self):
        cache = QueryCache(max_entries=2)
        cache.store(q(lower=1.0), [], now=0.0)
        cache.store(q(lower=2.0), [], now=0.0)
        cache.lookup(q(lower=1.0), now=0.1)  # touch 1 -> 2 becomes LRU
        cache.store(q(lower=3.0), [], now=0.2)
        assert cache.lookup(q(lower=2.0), now=0.3) is None
        assert cache.lookup(q(lower=1.0), now=0.3) is not None

    def test_len_bounded(self):
        cache = QueryCache(max_entries=4)
        for i in range(20):
            cache.store(q(lower=float(i)), [], now=0.0)
        assert len(cache) == 4

    def test_invalidate_all(self):
        cache = QueryCache()
        cache.store(q(), [], now=0.0)
        cache.invalidate_all()
        assert len(cache) == 0


class TestStats:
    def test_hit_rate(self):
        cache = QueryCache()
        cache.store(q(), [], now=0.0)
        cache.lookup(q(), now=0.1)            # hit
        cache.lookup(q(lower=9.0), now=0.1)   # miss
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert QueryCache().hit_rate == 0.0
