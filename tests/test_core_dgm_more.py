"""Deeper DGM tests: forks, geo splits, transitions, store sync, recovery."""


from repro.core.config import FocusConfig
from repro.harness import build_focus_cluster, drain


def build(num_nodes=24, seed=81, **config_kwargs):
    config = FocusConfig(**config_kwargs)
    scenario = build_focus_cluster(num_nodes, seed=seed, with_store=False,
                                  config=config)
    drain(scenario, 15.0)
    return scenario


class TestForks:
    def test_fork_keeps_groups_under_cap(self):
        scenario = build(num_nodes=48, seed=82, max_group_size=8)
        drain(scenario, 15.0)
        for group in scenario.service.dgm.groups.all_groups():
            assert group.size_estimate() <= 10  # cap + report slack

    def test_forked_instances_share_family_range(self):
        scenario = build(num_nodes=48, seed=83, max_group_size=8)
        from collections import defaultdict

        by_range = defaultdict(list)
        for group in scenario.service.dgm.groups.all_groups():
            if group.size_estimate() > 0:
                by_range[(group.attribute, group.base)].append(group)
        forked = [groups for groups in by_range.values() if len(groups) > 1]
        assert forked, "expected at least one family to fork at cap 8"
        for groups in forked:
            assert len({g.range for g in groups}) == 1

    def test_queries_cover_forked_instances(self):
        from repro.core.query import Query, QueryTerm
        from repro.harness import run_query

        scenario = build(num_nodes=48, seed=84, max_group_size=8)
        drain(scenario, 10.0)
        response = run_query(
            scenario, Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=0.0)
        )
        assert len(response.matches) == 48


class TestGeoSplit:
    def test_split_creates_region_groups(self):
        scenario = build(num_nodes=32, seed=85, geo_split_km=1500.0)
        drain(scenario, 30.0)
        groups = [g for g in scenario.service.dgm.groups.all_groups()
                  if g.size_estimate() > 0]
        regions = {g.region for g in groups if g.region}
        assert len(regions) >= 3  # nodes span four regions

    def test_split_groups_contain_only_their_region(self):
        scenario = build(num_nodes=32, seed=86, geo_split_km=1500.0)
        drain(scenario, 40.0)
        for group in scenario.service.dgm.groups.all_groups():
            if group.region is None:
                continue
            for node_id in group.members:
                agent = scenario.agent(node_id)
                assert agent.region == group.region

    def test_no_split_when_disabled(self):
        scenario = build(num_nodes=32, seed=87, geo_split_km=None)
        drain(scenario, 30.0)
        assert all(
            g.region is None for g in scenario.service.dgm.groups.all_groups()
        )

    def test_nearby_regions_not_split(self):
        """A threshold above the deployment's maximum span never splits."""
        scenario = build(num_nodes=32, seed=88, geo_split_km=50000.0)
        drain(scenario, 30.0)
        metric = scenario.service.metrics.get_counter("geo_splits")
        assert metric is None or metric.value == 0


class TestTransitions:
    def test_transitions_cleared_by_reports(self):
        scenario = build(num_nodes=16, seed=89)
        drain(scenario, 20.0)
        assert len(scenario.service.dgm.transitions) == 0

    def test_transition_created_on_move(self):
        scenario = build(num_nodes=16, seed=90)
        agent = scenario.agents[0]
        membership = agent.memberships["ram_mb"]
        new_value = membership.high + 2000 if membership.high + 2000 < 16384 \
            else membership.low - 2000
        agent.set_attribute("ram_mb", new_value)
        drain(scenario, 0.5)
        assert (agent.node_id, "ram_mb") in scenario.service.dgm.transitions

    def test_sweep_expires_stuck_transitions(self):
        scenario = build(num_nodes=8, seed=91, transition_ttl=5.0)
        dgm = scenario.service.dgm
        from repro.core.dgm import Transition

        dgm.transitions[("ghost", "ram_mb")] = Transition(
            "ghost", "ram_mb", "ram_mb.0", scenario.sim.now
        )
        drain(scenario, 15.0)
        assert ("ghost", "ram_mb") not in dgm.transitions

    def test_transitioning_nodes_filters_by_attribute(self):
        scenario = build(num_nodes=8, seed=92)
        from repro.core.dgm import Transition

        dgm = scenario.service.dgm
        now = scenario.sim.now
        dgm.transitions[("a", "ram_mb")] = Transition("a", "ram_mb", "ram_mb.0", now)
        dgm.transitions[("b", "disk_gb")] = Transition("b", "disk_gb", "disk_gb.0", now)
        assert dgm.transitioning_nodes("ram_mb") == ["a"]
        assert dgm.transitioning_nodes("disk_gb") == ["b"]
        assert dgm.transitioning_nodes("vcpus") == []


class TestStoreSync:
    def test_group_tables_persisted(self):
        scenario = build_focus_cluster(12, seed=93, with_store=True)
        drain(scenario, 25.0)  # past a store_sync_interval
        rows = []
        scenario.service.store_client.scan("groups", rows.extend)
        drain(scenario, 2.0)
        populated = [
            g for g in scenario.service.dgm.groups.all_groups()
            if g.size_estimate() > 0
        ]
        names = {row.key for row in rows}
        assert {g.name for g in populated} <= names
        sample = next(iter(rows))
        assert "members" in sample.value
        assert "range" in sample.value


class TestSuggestDeterminism:
    def test_same_value_same_group(self):
        scenario = build(num_nodes=8, seed=94)
        dgm = scenario.service.dgm
        a = dgm.suggest("x1", "us-east-2", "ram_mb", 5000.0)
        b = dgm.suggest("x2", "us-west-2", "ram_mb", 5500.0)
        assert a["name"] == b["name"]  # same family instance
        assert a["range"] == b["range"] == [4096.0, 6144.0]

    def test_entry_points_exclude_self(self):
        scenario = build(num_nodes=8, seed=95)
        dgm = scenario.service.dgm
        suggestion = dgm.suggest("fresh-node", "us-east-2", "ram_mb", 5000.0)
        from repro.core.groups import serf_address

        assert serf_address("fresh-node", suggestion["name"]) not in (
            suggestion["entry_points"]
        )
