"""Tests for the §XII extensions: per-group fanout and normalizers."""


from repro.core.attributes import AttributeKind, AttributeSchema, AttributeSpec
from repro.core.config import FocusConfig
from repro.harness import build_focus_cluster, drain


class TestFanoutOverrides:
    def test_default_fanout(self):
        config = FocusConfig()
        assert config.fanout_for("ram_mb") == config.serf.gossip_fanout

    def test_override_applies(self):
        config = FocusConfig(fanout_overrides={"cpu_percent": 12})
        assert config.fanout_for("cpu_percent") == 12
        assert config.fanout_for("ram_mb") == config.serf.gossip_fanout

    def test_suggestion_carries_fanout(self):
        config = FocusConfig(fanout_overrides={"cpu_percent": 12})
        scenario = build_focus_cluster(8, seed=61, with_store=False, config=config)
        drain(scenario, 10.0)
        for agent in scenario.agents:
            cpu_serf = agent.memberships["cpu_percent"].serf
            ram_serf = agent.memberships["ram_mb"].serf
            assert cpu_serf.config.gossip_fanout == 12
            assert ram_serf.config.gossip_fanout == config.serf.gossip_fanout

    def test_override_does_not_mutate_shared_config(self):
        config = FocusConfig(fanout_overrides={"cpu_percent": 12})
        scenario = build_focus_cluster(4, seed=62, with_store=False, config=config)
        drain(scenario, 10.0)
        assert config.serf.gossip_fanout == 4


class TestNormalizers:
    def make_schema(self):
        schema = AttributeSchema()
        schema.add(
            AttributeSpec(
                "ram_mb",
                AttributeKind.DYNAMIC,
                cutoff=2048.0,
                max_value=16384.0,
                # Source reports bytes; canonical unit is megabytes.
                normalizer=lambda raw: float(raw) / (1024.0 * 1024.0),
            )
        )
        return schema

    def test_spec_normalize(self):
        schema = self.make_schema()
        assert schema.get("ram_mb").normalize(2048 * 1024 * 1024) == 2048.0

    def test_schema_passthrough_without_normalizer(self):
        schema = AttributeSchema()
        schema.add(AttributeSpec("x", AttributeKind.DYNAMIC, cutoff=1.0))
        assert schema.normalize_value("x", 5.5) == 5.5
        assert schema.normalize_value("unknown", "raw") == "raw"

    def test_agent_normalizes_collector_values(self, sim, network, regions):
        from repro.core.agent import NodeAgent
        from repro.core.service import FocusService

        config = FocusConfig(schema=self.make_schema())
        service = FocusService(sim, network, region=regions[0], config=config)
        service.start()
        agent = NodeAgent(
            sim, network, "n1", regions[0], "focus",
            dynamic={"ram_mb": 4096.0}, config=config,
        )
        agent.start()
        sim.run_until(5.0)
        # A heterogeneous source reports bytes; the agent stores megabytes.
        agent.set_attribute("ram_mb", 8192 * 1024 * 1024)
        assert agent.dynamic["ram_mb"] == 8192.0
        sim.run_until(15.0)
        membership = agent.memberships["ram_mb"]
        assert membership.contains(8192.0)
