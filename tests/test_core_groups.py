"""Unit tests for group metadata, forks and geo splits."""

from repro.core.groups import GroupInfo, GroupTable, serf_address


def make_table():
    return GroupTable()


class TestGroupInfo:
    def test_range_and_contains(self):
        g = GroupInfo("ram_mb.4096", "ram_mb", 4096.0, 2048.0)
        assert g.range == (4096.0, 6144.0)
        assert g.contains_value(4096.0)
        assert g.contains_value(6143.9)
        assert not g.contains_value(6144.0)

    def test_size_estimate_counts_pending_and_members(self):
        from repro.core.groups import GroupMember

        g = GroupInfo("g", "a", 0.0, 1.0)
        g.pending["n1"] = GroupMember("n1", "r", 0.0)
        g.members["n2"] = GroupMember("n2", "r", 0.0)
        g.members["n1"] = GroupMember("n1", "r", 0.0)  # overlap counted once
        assert g.size_estimate() == 2

    def test_entry_points_use_serf_addresses(self):
        from repro.core.groups import GroupMember

        g = GroupInfo("g", "a", 0.0, 1.0)
        g.members["n1"] = GroupMember("n1", "r", 0.0)
        assert g.entry_points() == [serf_address("n1", "g")]

    def test_record_report_replaces_members(self):
        from repro.core.groups import GroupMember

        g = GroupInfo("g", "a", 0.0, 1.0)
        g.pending["n1"] = GroupMember("n1", "r", 0.0)
        g.representatives.add("gone")
        g.record_report(["n1", "n2"], {"n1": "r1", "n2": "r2"}, time=5.0)
        assert set(g.members) == {"n1", "n2"}
        assert g.pending == {}
        assert g.representatives == set()  # 'gone' is not a member
        assert g.updated_at == 5.0

    def test_regions_spanned(self):
        from repro.core.groups import GroupMember

        g = GroupInfo("g", "a", 0.0, 1.0)
        g.members["n1"] = GroupMember("n1", "us-east-2", 0.0)
        g.pending["n2"] = GroupMember("n2", "us-west-2", 0.0)
        assert g.regions_spanned() == {"us-east-2", "us-west-2"}


class TestFamily:
    def test_first_instance_uses_family_name(self):
        table = make_table()
        family = table.family("ram_mb", 4096.0, 2048.0)
        group = family.open_instance_for("us-east-2", max_size=100, time=0.0)
        assert group.name == "ram_mb.4096"

    def test_fork_creates_suffixed_instance(self):
        table = make_table()
        family = table.family("ram_mb", 4096.0, 2048.0)
        first = family.open_instance_for("r", 100, 0.0)
        family.mark_forked(first)
        second = family.open_instance_for("r", 100, 1.0)
        assert second is not first
        assert second.name == "ram_mb.4096#1"

    def test_full_instance_not_suggested(self):
        from repro.core.groups import GroupMember

        table = make_table()
        family = table.family("a", 0.0, 1.0)
        first = family.open_instance_for("r", max_size=2, time=0.0)
        first.pending["n1"] = GroupMember("n1", "r", 0.0)
        first.pending["n2"] = GroupMember("n2", "r", 0.0)
        second = family.open_instance_for("r", max_size=2, time=1.0)
        assert second is not first

    def test_fullest_nonfull_instance_preferred(self):
        from repro.core.groups import GroupMember

        table = make_table()
        family = table.family("a", 0.0, 1.0)
        first = family.open_instance_for("r", max_size=10, time=0.0)
        first.pending["n1"] = GroupMember("n1", "r", 0.0)
        family.mark_forked(first)
        first.open = True  # reopen artificially with 1 member
        second = family._new_instance(None, 1.0)
        chosen = family.open_instance_for("r", max_size=10, time=2.0)
        assert chosen is first  # fuller of the two

    def test_geo_split_names_by_region(self):
        table = make_table()
        family = table.family("a", 0.0, 1.0)
        family.enable_geo_split()
        east = family.open_instance_for("us-east-2", 100, 0.0)
        west = family.open_instance_for("us-west-2", 100, 0.0)
        assert east.name == "a.0@us-east-2"
        assert west.name == "a.0@us-west-2"
        assert east.region == "us-east-2"


class TestGroupTable:
    def test_instances_covering_interval(self):
        table = make_table()
        for base in (0.0, 2048.0, 4096.0):
            family = table.family("ram_mb", base, 2048.0)
            table.index(family.open_instance_for("r", 100, 0.0))
        covering = table.instances_covering("ram_mb", 2048.0, 4000.0)
        assert [g.name for g in covering] == ["ram_mb.2048"]
        covering = table.instances_covering("ram_mb", 2048.0, None)
        assert {g.name for g in covering} == {"ram_mb.2048", "ram_mb.4096"}

    def test_instances_covering_other_attribute_excluded(self):
        table = make_table()
        family = table.family("disk", 0.0, 5.0)
        table.index(family.open_instance_for("r", 100, 0.0))
        assert table.instances_covering("ram_mb", None, None) == []

    def test_upper_bound_mid_group(self):
        table = make_table()
        family = table.family("ram_mb", 4096.0, 2048.0)
        table.index(family.open_instance_for("r", 100, 0.0))
        # Query upper bound falls inside the group's range: still a candidate.
        covering = table.instances_covering("ram_mb", None, 5000.0)
        assert len(covering) == 1

    def test_groups_of_node(self):
        from repro.core.groups import GroupMember

        table = make_table()
        family = table.family("a", 0.0, 1.0)
        group = family.open_instance_for("r", 100, 0.0)
        table.index(group)
        group.pending["n1"] = GroupMember("n1", "r", 0.0)
        assert [g.name for g in table.groups_of_node("n1")] == [group.name]
        assert table.groups_of_node("ghost") == []

    def test_require_unknown_raises(self):
        import pytest

        from repro.errors import GroupError

        with pytest.raises(GroupError):
            make_table().require("nope")
