"""Unit and property tests for deterministic group naming."""

import pytest
from hypothesis import given, strategies as st

from repro.core.naming import (
    group_base,
    group_name,
    group_range,
    groups_covering,
    parse_group_name,
)
from repro.errors import GroupError

cutoffs = st.sampled_from([1.0, 2.0, 5.0, 25.0, 2048.0])
values = st.floats(min_value=0, max_value=1e5)


class TestGroupBase:
    def test_paper_example(self):
        """Disk cutoff 10 -> a node with 13 GB free lands in disk.10."""
        assert group_base(13.0, 10.0) == 10.0
        assert group_name("disk_gb", 13.0, 10.0) == "disk_gb.10"

    def test_exact_boundary(self):
        assert group_base(10.0, 10.0) == 10.0
        assert group_base(9.999, 10.0) == 0.0

    def test_invalid_cutoff(self):
        with pytest.raises(GroupError):
            group_base(5.0, 0.0)

    @given(values, cutoffs)
    def test_value_within_own_group_range(self, value, cutoff):
        base = group_base(value, cutoff)
        low, high = group_range(base, cutoff)
        assert low <= value < high or value == pytest.approx(high)


class TestNames:
    def test_integer_rendering(self):
        assert group_name("ram_mb", 5000.0, 2048.0) == "ram_mb.4096"

    def test_fractional_cutoff(self):
        assert group_name("load", 0.7, 0.5) == "load.0.5"

    def test_region_qualified(self):
        name = group_name("ram_mb", 5000.0, 2048.0, region="us-west-2")
        assert name == "ram_mb.4096@us-west-2"

    def test_attribute_name_restrictions(self):
        with pytest.raises(GroupError):
            group_name("bad.attr", 1.0, 1.0)
        with pytest.raises(GroupError):
            group_name("bad@attr", 1.0, 1.0)

    @given(values, cutoffs)
    def test_deterministic(self, value, cutoff):
        assert group_name("a", value, cutoff) == group_name("a", value, cutoff)

    @given(values, cutoffs)
    def test_parse_roundtrip(self, value, cutoff):
        name = group_name("ram_mb", value, cutoff)
        parsed = parse_group_name(name)
        assert parsed.attribute == "ram_mb"
        assert parsed.base == group_base(value, cutoff)
        assert parsed.region is None

    def test_parse_region(self):
        parsed = parse_group_name("ram_mb.4096@us-west-2")
        assert parsed.region == "us-west-2"

    def test_parse_malformed(self):
        with pytest.raises(GroupError):
            parse_group_name("no-separator")
        with pytest.raises(GroupError):
            parse_group_name("attr.notanumber")


class TestGroupsCovering:
    def test_simple_interval(self):
        names = groups_covering("d", 12.0, 27.0, 10.0, value_max=100.0)
        assert names == ["d.10", "d.20"]

    def test_open_upper_clamped_by_value_max(self):
        names = groups_covering("d", 35.0, None, 10.0, value_max=60.0)
        assert names == ["d.30", "d.40", "d.50", "d.60"]

    def test_open_lower(self):
        names = groups_covering("d", None, 15.0, 10.0, value_max=100.0)
        assert names == ["d.0", "d.10"]

    def test_empty_when_disjoint(self):
        assert groups_covering("d", 50.0, None, 10.0, value_max=40.0) == []

    def test_max_groups_cap(self):
        names = groups_covering("d", 0.0, None, 1.0, value_max=1e9, max_groups=16)
        assert len(names) == 16

    @given(
        st.floats(min_value=0, max_value=1e3),
        st.floats(min_value=0, max_value=1e3),
        cutoffs,
    )
    def test_every_in_range_value_covered(self, a, b, cutoff):
        lower, upper = min(a, b), max(a, b)
        names = groups_covering(
            "x", lower, upper, cutoff, value_max=1e3, max_groups=2048
        )
        value = (lower + upper) / 2
        assert group_name("x", value, cutoff) in names
