"""Unit and property tests for the query structure."""

import pytest
from hypothesis import given, strategies as st

from repro.core.query import Query, QueryTerm
from repro.errors import QueryError


class TestTermValidation:
    def test_needs_a_bound(self):
        with pytest.raises(QueryError):
            QueryTerm("x")

    def test_lower_above_upper_rejected(self):
        with pytest.raises(QueryError):
            QueryTerm("x", lower=5, upper=3)

    def test_equals_excludes_bounds(self):
        with pytest.raises(QueryError):
            QueryTerm("x", lower=1, equals="y")

    def test_empty_name_rejected(self):
        with pytest.raises(QueryError):
            QueryTerm("", lower=1)


class TestTermMatching:
    def test_range_inclusive(self):
        term = QueryTerm("x", lower=1.0, upper=2.0)
        assert term.matches(1.0)
        assert term.matches(2.0)
        assert not term.matches(0.99)
        assert not term.matches(2.01)

    def test_open_bounds(self):
        assert QueryTerm.at_least("x", 5).matches(1e9)
        assert QueryTerm.at_most("x", 5).matches(-1e9)

    def test_exact_numeric(self):
        term = QueryTerm.exact("x", 4)
        assert term.matches(4)
        assert not term.matches(4.1)

    def test_string_equality(self):
        term = QueryTerm.exact("arch", "x86")
        assert term.matches("x86")
        assert not term.matches("arm64")

    def test_missing_value_never_matches(self):
        assert not QueryTerm.at_least("x", 1).matches(None)

    def test_non_numeric_value_against_bounds(self):
        assert not QueryTerm.at_least("x", 1).matches("not-a-number")

    def test_numeric_string_coerced(self):
        assert QueryTerm.at_least("x", 1).matches("5")


class TestQuery:
    def test_requires_terms(self):
        with pytest.raises(QueryError):
            Query([])

    def test_duplicate_terms_rejected(self):
        with pytest.raises(QueryError):
            Query([QueryTerm.at_least("x", 1), QueryTerm.at_most("x", 5)])

    def test_limit_positive(self):
        with pytest.raises(QueryError):
            Query([QueryTerm.at_least("x", 1)], limit=0)

    def test_negative_freshness_rejected(self):
        with pytest.raises(QueryError):
            Query([QueryTerm.at_least("x", 1)], freshness_ms=-1)

    def test_matches_conjunction(self):
        query = Query([QueryTerm.at_least("ram", 4096), QueryTerm.exact("arch", "x86")])
        assert query.matches({"ram": 8192, "arch": "x86"})
        assert not query.matches({"ram": 8192, "arch": "arm64"})
        assert not query.matches({"ram": 1024, "arch": "x86"})

    def test_from_bounds(self):
        query = Query.from_bounds(
            {"ram": (4096, None), "cpu": (None, 50), "arch": "x86", "cores": 8},
            limit=3,
        )
        assert query.limit == 3
        assert query.term("ram").lower == 4096
        assert query.term("cpu").upper == 50
        assert query.term("arch").equals == "x86"
        assert query.term("cores").lower == query.term("cores").upper == 8.0

    def test_term_lookup_missing(self):
        query = Query([QueryTerm.at_least("x", 1)])
        assert query.term("y") is None


finite = st.floats(min_value=-1e9, max_value=1e9)


@st.composite
def terms(draw):
    name = draw(st.sampled_from(["ram", "cpu", "disk", "arch"]))
    if draw(st.booleans()):
        return QueryTerm.exact(name, draw(st.text(min_size=1, max_size=8)))
    lower = draw(st.none() | finite)
    upper = draw(st.none() | finite)
    if lower is None and upper is None:
        lower = 0.0
    if lower is not None and upper is not None and lower > upper:
        lower, upper = upper, lower
    return QueryTerm(name, lower=lower, upper=upper)


class TestSerialisation:
    @given(st.lists(terms(), min_size=1, max_size=4, unique_by=lambda t: t.name))
    def test_json_roundtrip(self, term_list):
        query = Query(term_list, limit=5, freshness_ms=100.0)
        restored = Query.from_json(query.to_json())
        assert restored.limit == query.limit
        assert restored.freshness_ms == query.freshness_ms
        for original in query.terms:
            copy = restored.term(original.name)
            assert copy.lower == original.lower
            assert copy.upper == original.upper
            assert copy.equals == original.equals

    @given(st.lists(terms(), min_size=2, max_size=4, unique_by=lambda t: t.name))
    def test_cache_key_order_independent(self, term_list):
        forward = Query(term_list)
        backward = Query(list(reversed(term_list)))
        assert forward.cache_key() == backward.cache_key()

    def test_cache_key_distinguishes_limits(self):
        t = [QueryTerm.at_least("x", 1)]
        assert Query(t, limit=1).cache_key() != Query(t, limit=2).cache_key()

    @given(st.lists(terms(), min_size=1, max_size=4, unique_by=lambda t: t.name),
           st.dictionaries(st.sampled_from(["ram", "cpu", "disk", "arch"]),
                           finite | st.text(max_size=8), max_size=4))
    def test_roundtrip_preserves_matching(self, term_list, attrs):
        query = Query(term_list)
        restored = Query.from_json(query.to_json())
        assert query.matches(attrs) == restored.matches(attrs)
