"""Router-specific tests: smallest-group planning, waves, timeout, delegation."""

import pytest

from repro.core.config import FocusConfig
from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, drain, run_query


class TestPlanning:
    def test_smallest_term_selected(self):
        """With an exact cpu group term and a broad ram term, the router must
        fan out over the (smaller) cpu candidates."""
        scenario = build_focus_cluster(40, seed=21, with_store=False)
        drain(scenario, 12.0)
        before = scenario.service.metrics.counter("group_queries").value
        query = Query(
            [
                QueryTerm("cpu_percent", lower=0.0, upper=24.9),
                QueryTerm("ram_mb", lower=0.0, upper=16384.0),
            ],
            freshness_ms=0.0,
        )
        response = run_query(scenario, query)
        fanout = scenario.service.metrics.counter("group_queries").value - before
        cpu_instances = scenario.service.dgm.groups.instances_covering(
            "cpu_percent", 0.0, 24.9
        )
        assert fanout <= len(cpu_instances) + 1
        for match in response.matches:
            assert match["attrs"]["cpu_percent"] <= 24.9

    def test_limit_prunes_fanout(self):
        scenario = build_focus_cluster(64, seed=22, with_store=False)
        drain(scenario, 15.0)
        before = scenario.service.metrics.counter("group_queries").value
        query = Query([QueryTerm.at_least("ram_mb", 0.0)], limit=3, freshness_ms=0.0)
        response = run_query(scenario, query)
        fanout = scenario.service.metrics.counter("group_queries").value - before
        all_instances = scenario.service.dgm.groups.instances_covering("ram_mb", 0.0, None)
        assert len(response.matches) == 3
        assert fanout < len(all_instances)


class TestEmptyGroups:
    def test_wave_of_empty_groups_finishes_immediately(self):
        """Group instances whose members all left produce no RPCs; the
        router must finish (or move to the next wave) without waiting for
        the query timeout."""
        scenario = build_focus_cluster(12, seed=20, with_store=False)
        drain(scenario, 12.0)
        dgm = scenario.service.dgm
        # Empty every ram group server-side (as if all members moved away
        # moments ago and reports confirmed it).
        for group in dgm.groups.instances_covering("ram_mb", None, None):
            group.members.clear()
            group.pending.clear()
        query = Query([QueryTerm.at_least("ram_mb", 0.0)], limit=3, freshness_ms=0.0)
        response = run_query(scenario, query)
        assert response.matches == []
        assert not response.timed_out
        assert response.elapsed < scenario.config.query_timeout / 2


class TestTimeout:
    def test_unresponsive_group_times_out_with_partial_results(self):
        config = FocusConfig(query_timeout=1.5, group_query_timeout=1.0)
        scenario = build_focus_cluster(24, seed=23, with_store=False, config=config)
        drain(scenario, 12.0)
        # Partition one group's members from the service after reports, so
        # the service still believes the group is reachable.
        groups = scenario.service.dgm.groups.instances_covering("ram_mb", 0.0, None)
        victims = groups[0].all_node_ids()
        for node_id in victims:
            scenario.network.block(scenario.service.address, node_id)
        query = Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=0.0)
        response = run_query(scenario, query)
        assert response.timed_out or set(response.node_ids).isdisjoint(victims)

    def test_retry_uses_second_member(self):
        """If the randomly chosen member is dead, the router retries another."""
        scenario = build_focus_cluster(24, seed=24, with_store=False)
        drain(scenario, 12.0)
        group = next(
            g
            for g in scenario.service.dgm.groups.all_groups()
            if len(g.members) >= 3
        )
        # Kill one member; the service's member list is still stale.
        victim = sorted(group.members)[0]
        scenario.agent(victim).stop()
        low, high = group.range
        query = Query(
            [QueryTerm(group.attribute, lower=low, upper=high - 0.001)],
            freshness_ms=0.0,
        )
        response = run_query(scenario, query)
        # The surviving members still answer (directly or via retry).
        alive_expected = {
            a.node_id
            for a in scenario.agents
            if a.running and low <= a.dynamic[group.attribute] < high
        }
        assert alive_expected.issubset(set(response.node_ids) | {victim})


class TestDelegation:
    def test_delegated_response_contains_candidates(self):
        config = FocusConfig(delegation_enabled=True, delegation_threshold=0)
        scenario = build_focus_cluster(24, seed=25, with_store=False, config=config)
        drain(scenario, 12.0)
        query = Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=0.0)
        response = run_query(scenario, query)
        # The client transparently performed the pull itself.
        assert response.source == "delegated"
        expected = {a.node_id for a in scenario.agents}
        assert set(response.node_ids) == expected

    def test_delegated_queries_not_cached(self):
        config = FocusConfig(delegation_enabled=True, delegation_threshold=0)
        scenario = build_focus_cluster(12, seed=26, with_store=False, config=config)
        drain(scenario, 12.0)
        query = Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=60_000.0)
        first = run_query(scenario, query)
        second = run_query(scenario, query)
        assert first.source == "delegated"
        assert second.source == "delegated"  # never served from cache
        assert scenario.service.cache.hits == 0

    def test_delegation_respects_limit(self):
        config = FocusConfig(delegation_enabled=True, delegation_threshold=0)
        scenario = build_focus_cluster(24, seed=27, with_store=False, config=config)
        drain(scenario, 12.0)
        query = Query([QueryTerm.at_least("ram_mb", 0.0)], limit=4, freshness_ms=0.0)
        response = run_query(scenario, query)
        assert len(response.matches) == 4


class TestCachePath:
    def test_cache_disabled_config(self):
        config = FocusConfig(cache_enabled=False)
        scenario = build_focus_cluster(12, seed=28, with_store=False, config=config)
        drain(scenario, 12.0)
        query = Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=60_000.0)
        first = run_query(scenario, query)
        second = run_query(scenario, query)
        assert first.source == "groups"
        assert second.source == "groups"

    def test_cache_hit_faster_than_group_pull(self):
        scenario = build_focus_cluster(24, seed=29, with_store=False)
        drain(scenario, 12.0)
        query = Query([QueryTerm.at_least("ram_mb", 1000.0)], freshness_ms=120_000.0)
        miss = run_query(scenario, query)
        hit = run_query(scenario, query)
        assert hit.source == "cache"
        assert hit.elapsed < miss.elapsed
        # Fig. 8c: the cache path is dominated by server processing (~45 ms).
        assert hit.elapsed == pytest.approx(
            scenario.config.server_processing_delay, rel=0.5
        )
