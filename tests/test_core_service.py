"""Integration tests for the FOCUS service: registration, DGM, router."""

import pytest

from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, drain, run_query


@pytest.fixture(scope="module")
def small_cluster():
    scenario = build_focus_cluster(48, seed=11, with_store=True)
    drain(scenario, 15.0)
    return scenario


class TestRegistration:
    def test_all_nodes_registered(self, small_cluster):
        assert len(small_cluster.service.registrar.nodes) == 48
        assert all(a.registered for a in small_cluster.agents)

    def test_every_node_in_one_group_per_dynamic_attribute(self, small_cluster):
        dynamic = small_cluster.config.schema.dynamic()
        for agent in small_cluster.agents:
            assert set(agent.memberships) == set(dynamic)
            for attribute, membership in agent.memberships.items():
                value = agent.dynamic[attribute]
                assert membership.contains(value), (attribute, value, membership.group)

    def test_static_attributes_persisted_to_store(self, small_cluster):
        rows = []
        small_cluster.service.store_client.scan("static::arch", rows.extend)
        drain(small_cluster, 2.0)
        assert len(rows) == 48

    def test_static_counts_tracked(self, small_cluster):
        counts = small_cluster.service.registrar.static_counts
        assert counts["arch"] == 48

    def test_rejects_unknown_dynamic_attribute(self, small_cluster):
        from repro.errors import RegistrationError

        with pytest.raises(RegistrationError):
            small_cluster.service.registrar.register(
                {"node_id": "bad", "region": "us-east-2", "dynamic": {"nope": 1.0}}
            )

    def test_rejects_missing_node_id(self, small_cluster):
        from repro.errors import RegistrationError

        with pytest.raises(RegistrationError):
            small_cluster.service.registrar.register({"region": "us-east-2"})


class TestGroups:
    def test_group_ranges_are_cutoff_aligned(self, small_cluster):
        for group in small_cluster.service.dgm.groups.all_groups():
            cutoff = small_cluster.config.cutoff_for(group.attribute)
            assert group.base % cutoff == 0
            assert group.range == (group.base, group.base + cutoff)

    def test_members_confirmed_by_reports(self, small_cluster):
        groups = small_cluster.service.dgm.groups.all_groups()
        confirmed = sum(len(g.members) for g in groups)
        assert confirmed >= 0.9 * 48 * 4  # reports have confirmed ~everyone

    def test_each_group_has_a_representative(self, small_cluster):
        for group in small_cluster.service.dgm.groups.all_groups():
            if group.members:
                assert group.representatives

    def test_transitions_drain(self, small_cluster):
        assert len(small_cluster.service.dgm.transitions) == 0


class TestQueries:
    def test_dynamic_query_matches_ground_truth(self, small_cluster):
        query = Query(
            [QueryTerm("ram_mb", lower=4096.0, upper=6143.0)], freshness_ms=0.0
        )
        response = run_query(small_cluster, query)
        expected = {
            a.node_id
            for a in small_cluster.agents
            if 4096.0 <= a.dynamic["ram_mb"] <= 6143.0
        }
        assert set(response.node_ids) == expected
        assert response.source == "groups"

    def test_multi_term_conjunction(self, small_cluster):
        query = Query(
            [
                QueryTerm("cpu_percent", upper=50.0),
                QueryTerm("ram_mb", lower=2048.0),
            ],
            freshness_ms=0.0,
        )
        response = run_query(small_cluster, query)
        for match in response.matches:
            assert match["attrs"]["cpu_percent"] <= 50.0
            assert match["attrs"]["ram_mb"] >= 2048.0

    def test_limit_respected(self, small_cluster):
        query = Query([QueryTerm.at_least("ram_mb", 0.0)], limit=5, freshness_ms=0.0)
        response = run_query(small_cluster, query)
        assert len(response.matches) == 5

    def test_static_query_served_from_store(self, small_cluster):
        query = Query([QueryTerm.exact("service_type", "scheduler")])
        response = run_query(small_cluster, query)
        expected = {
            a.node_id
            for a in small_cluster.agents
            if a.static["service_type"] == "scheduler"
        }
        assert set(response.node_ids) == expected
        assert response.source == "static"

    def test_static_and_dynamic_terms_combined(self, small_cluster):
        query = Query(
            [QueryTerm.exact("arch", "x86"), QueryTerm.at_least("ram_mb", 1024.0)],
            freshness_ms=0.0,
        )
        response = run_query(small_cluster, query)
        assert response.source == "groups"
        for match in response.matches:
            assert match["attrs"]["arch"] == "x86"
            assert match["attrs"]["ram_mb"] >= 1024.0

    def test_cache_roundtrip(self, small_cluster):
        query = Query([QueryTerm.at_least("disk_gb", 50.0)], freshness_ms=60_000.0)
        first = run_query(small_cluster, query)
        second = run_query(small_cluster, query)
        assert second.source == "cache"
        assert {m["node"] for m in second.matches} == {m["node"] for m in first.matches}
        assert second.elapsed < first.elapsed

    def test_empty_result_when_nothing_matches(self, small_cluster):
        query = Query([QueryTerm.at_least("ram_mb", 16000.0),
                       QueryTerm.at_least("vcpus", 8.0)], freshness_ms=0.0)
        response = run_query(small_cluster, query)
        expected = {
            a.node_id
            for a in small_cluster.agents
            if a.dynamic["ram_mb"] >= 16000.0 and a.dynamic["vcpus"] >= 8.0
        }
        assert set(response.node_ids) == expected  # usually empty

    def test_malformed_query_reports_error(self, small_cluster):
        # A dynamic attribute with string equality cannot be group-routed.
        query = Query([QueryTerm("ram_mb", equals="lots")])
        response = run_query(small_cluster, query)
        assert response.error is not None


class TestResilience:
    def test_query_survives_member_crash(self):
        scenario = build_focus_cluster(32, seed=13, with_store=False)
        drain(scenario, 15.0)
        # Crash a quarter of the nodes without deregistration.
        for agent in scenario.agents[::4]:
            agent.stop()
        drain(scenario, 1.0)
        query = Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=0.0)
        response = run_query(scenario, query)
        live = {a.node_id for a in scenario.agents if a.running}
        assert set(response.node_ids).issubset(live | set())
        assert len(response.matches) > 0

    def test_dgm_rebuilds_from_reports(self):
        """Killing the DGM state and letting reports repopulate it (§VIII-A2)."""
        scenario = build_focus_cluster(24, seed=17, with_store=False)
        drain(scenario, 12.0)
        service = scenario.service
        groups_before = len(service.dgm.groups.all_groups())
        assert groups_before > 0
        # Simulate DGM restart: drop all group state.
        from repro.core.groups import GroupTable

        service.dgm.groups = GroupTable()
        service.dgm.transitions.clear()
        drain(scenario, scenario.config.report_interval * 2 + 2.0)
        rebuilt = service.dgm.groups.all_groups()
        assert sum(len(g.members) for g in rebuilt) > 0

    def test_node_shutdown_deregisters(self):
        scenario = build_focus_cluster(12, seed=19, with_store=False)
        drain(scenario, 10.0)
        victim = scenario.agents[0]
        victim.shutdown()
        drain(scenario, 5.0)
        assert victim.node_id not in scenario.service.registrar.nodes
