"""Tests for materialized views (§XII extension)."""

import pytest

from repro.core.query import Query, QueryTerm
from repro.core.views import is_view_group, view_group_name
from repro.errors import FocusError
from repro.harness import build_focus_cluster, drain, run_query


def idle_hosts_query(freshness_ms=0.0):
    return Query([QueryTerm.at_most("cpu_percent", 25.0)], freshness_ms=freshness_ms)


def create_view(scenario, query, view_id=None):
    results = []
    scenario.app.client.create_view(query, results.append, view_id=view_id)
    drain(scenario, 2.0)
    assert results and not results[0].get("error"), results
    return results[0]["view_id"]


@pytest.fixture(scope="module")
def cluster():
    scenario = build_focus_cluster(40, seed=51, with_store=False)
    drain(scenario, 15.0)
    return scenario


class TestNaming:
    def test_view_group_name(self):
        assert view_group_name("v1") == "view::v1"
        assert is_view_group("view::v1")
        assert not is_view_group("ram_mb.4096")


class TestLifecycle:
    def test_create_populates_matching_nodes(self, cluster):
        view_id = create_view(cluster, idle_hosts_query(), view_id="idle")
        drain(cluster, 10.0)
        view = cluster.service.views.views[view_id]
        expected = {
            a.node_id for a in cluster.agents if a.dynamic["cpu_percent"] <= 25.0
        }
        assert set(view.group.all_node_ids()) == expected

    def test_view_members_run_serf_group(self, cluster):
        view = cluster.service.views.views["idle"]
        member = next(iter(view.group.members))
        agent = cluster.agent(member)
        membership = agent.view_memberships["idle"]
        assert membership.serf.group_size() == len(view.group.members)

    def test_view_reports_flow(self, cluster):
        view = cluster.service.views.views["idle"]
        assert view.group.members  # confirmed by representative reports
        assert view.group.representatives

    def test_query_answered_from_view(self, cluster):
        response = run_query(cluster, idle_hosts_query())
        assert response.source == "view"
        expected = {
            a.node_id for a in cluster.agents if a.dynamic["cpu_percent"] <= 25.0
        }
        assert set(response.node_ids) == expected

    def test_view_with_limit_rejected(self, cluster):
        with pytest.raises(FocusError):
            cluster.service.views.create_view(
                Query([QueryTerm.at_most("cpu_percent", 25.0)], limit=5).to_json()
            )

    def test_duplicate_view_id_rejected(self, cluster):
        with pytest.raises(FocusError):
            cluster.service.views.create_view(
                idle_hosts_query().to_json(), view_id="idle"
            )

    def test_non_matching_query_bypasses_views(self, cluster):
        response = run_query(
            cluster, Query([QueryTerm.at_most("cpu_percent", 60.0)], freshness_ms=0.0)
        )
        assert response.source == "groups"


class TestEventTriggers:
    def test_node_joins_view_when_state_changes(self):
        scenario = build_focus_cluster(24, seed=52, with_store=False)
        drain(scenario, 12.0)
        create_view(scenario, idle_hosts_query(), view_id="idle")
        drain(scenario, 8.0)
        busy = next(a for a in scenario.agents if a.dynamic["cpu_percent"] > 50.0)
        assert "idle" not in busy.view_memberships
        busy.set_attribute("cpu_percent", 10.0)
        drain(scenario, 10.0)
        assert "idle" in busy.view_memberships
        view = scenario.service.views.views["idle"]
        assert busy.node_id in view.group.all_node_ids()

    def test_node_leaves_view_when_state_changes(self):
        scenario = build_focus_cluster(24, seed=53, with_store=False)
        drain(scenario, 12.0)
        create_view(scenario, idle_hosts_query(), view_id="idle")
        drain(scenario, 8.0)
        idle = next(a for a in scenario.agents if a.dynamic["cpu_percent"] <= 25.0)
        assert "idle" in idle.view_memberships
        idle.set_attribute("cpu_percent", 90.0)
        drain(scenario, 10.0)
        assert "idle" not in idle.view_memberships
        view = scenario.service.views.views["idle"]
        assert idle.node_id not in view.group.all_node_ids()

    def test_view_query_reflects_updates(self):
        scenario = build_focus_cluster(24, seed=54, with_store=False)
        drain(scenario, 12.0)
        create_view(scenario, idle_hosts_query(), view_id="idle")
        drain(scenario, 8.0)
        first = run_query(scenario, idle_hosts_query())
        mover = next(a for a in scenario.agents if a.node_id in first.node_ids)
        mover.set_attribute("cpu_percent", 99.0)
        drain(scenario, 10.0)
        second = run_query(scenario, idle_hosts_query())
        assert mover.node_id not in second.node_ids
        assert second.source == "view"


class TestLateRegistration:
    def test_new_node_learns_existing_views(self):
        scenario = build_focus_cluster(16, seed=55, with_store=False)
        drain(scenario, 12.0)
        create_view(scenario, idle_hosts_query(), view_id="idle")
        drain(scenario, 5.0)
        from repro.core.agent import NodeAgent

        late = NodeAgent(
            scenario.sim,
            scenario.network,
            "late-node",
            "us-east-2",
            scenario.service.address,
            dynamic={"cpu_percent": 5.0, "ram_mb": 4000.0, "vcpus": 2.0,
                     "disk_gb": 40.0},
            config=scenario.config,
        )
        late.start()
        drain(scenario, 10.0)
        assert "idle" in late.view_definitions
        assert "idle" in late.view_memberships


class TestShutdownCleanup:
    def test_graceful_shutdown_leaves_view_groups(self):
        scenario = build_focus_cluster(16, seed=57, with_store=False)
        drain(scenario, 12.0)
        create_view(scenario, idle_hosts_query(), view_id="idle")
        drain(scenario, 8.0)
        member = next(a for a in scenario.agents if "idle" in a.view_memberships)
        member.shutdown()
        drain(scenario, 20.0)
        view = scenario.service.views.views["idle"]
        assert member.node_id not in view.group.all_node_ids()


class TestDropView:
    def test_drop_removes_memberships(self):
        scenario = build_focus_cluster(16, seed=56, with_store=False)
        drain(scenario, 12.0)
        create_view(scenario, idle_hosts_query(), view_id="idle")
        drain(scenario, 8.0)
        members = [
            a for a in scenario.agents if "idle" in a.view_memberships
        ]
        assert members
        scenario.app.client.drop_view("idle")
        drain(scenario, 5.0)
        assert "idle" not in scenario.service.views.views
        for agent in members:
            assert "idle" not in agent.view_memberships
        # Queries fall back to directed pulls.
        response = run_query(scenario, idle_hosts_query())
        assert response.source == "groups"
