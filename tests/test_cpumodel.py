"""ServerCpuModel: busy-until arithmetic, shedding, and broker equivalence."""

import pytest

from repro.core.cpumodel import MIN_EFFECTIVE_CORES, ServerCpuModel


class TestServiceTime:
    def test_default_cost_is_per_request_cpu(self):
        model = ServerCpuModel(4.0, per_request_cpu=0.008)
        assert model.service_time() == pytest.approx(0.002)

    def test_explicit_cost_overrides_default(self):
        model = ServerCpuModel(2.0, per_request_cpu=0.008)
        assert model.service_time(0.01) == pytest.approx(0.005)

    def test_connections_erode_effective_cores(self):
        model = ServerCpuModel(4.0, per_request_cpu=0.004,
                               per_connection_cpu=0.001)
        assert model.effective_cores(0) == pytest.approx(4.0)
        assert model.effective_cores(1000) == pytest.approx(3.0)
        assert model.service_time(connections=1000) == pytest.approx(
            0.004 / 3.0
        )

    def test_effective_cores_never_reach_zero(self):
        model = ServerCpuModel(1.0, per_connection_cpu=1.0)
        assert model.effective_cores(50) == MIN_EFFECTIVE_CORES


class TestOccupy:
    def test_idle_server_returns_service_time(self):
        model = ServerCpuModel(1.0)
        assert model.occupy(10.0, 0.5) == pytest.approx(0.5)
        assert model.busy_until == pytest.approx(10.5)

    def test_busy_server_queues_serially(self):
        """The busy-until recurrence: each arrival waits out the backlog."""
        model = ServerCpuModel(1.0)
        assert model.occupy(0.0, 0.5) == pytest.approx(0.5)
        assert model.occupy(0.0, 0.5) == pytest.approx(1.0)
        assert model.occupy(0.25, 0.5) == pytest.approx(1.25)
        assert model.backlog_seconds(0.25) == pytest.approx(1.25)

    def test_matches_reference_recurrence(self):
        """occupy() is byte-identical to the legacy inline arithmetic."""
        model = ServerCpuModel(1.0)
        busy_until = 0.0
        arrivals = [(0.0, 0.3), (0.1, 0.05), (2.0, 0.2), (2.0, 0.4),
                    (2.05, 0.001), (7.5, 1.0)]
        for now, service in arrivals:
            start = max(now, busy_until)
            busy_until = start + service
            expected = busy_until - now
            assert model.occupy(now, service) == expected
            assert model.busy_until == busy_until

    def test_idle_gap_is_not_accumulated(self):
        model = ServerCpuModel(1.0)
        model.occupy(0.0, 0.5)
        model.occupy(10.0, 0.5)  # 9.5 s idle in between
        assert model.busy_accum == pytest.approx(1.0)
        assert model.take_window_busy() == pytest.approx(1.0)
        assert model.take_window_busy() == 0.0  # reset on read


class TestTryOccupyAndAdmit:
    def test_unbounded_backlog_never_sheds(self):
        model = ServerCpuModel(1.0)
        for _ in range(100):
            assert model.try_occupy(0.0, 1.0) is not None
        assert model.requests_shed == 0

    def test_sheds_when_wait_exceeds_backlog_bound(self):
        model = ServerCpuModel(1.0, max_backlog_seconds=1.0)
        assert model.try_occupy(0.0, 0.8) == pytest.approx(0.8)
        # Second arrival would wait 0.8 s <= 1.0 s: admitted.
        assert model.try_occupy(0.0, 0.8) == pytest.approx(1.6)
        # Third would wait 1.6 s > 1.0 s: shed, and the backlog is NOT
        # charged — a shed request must not consume capacity.
        before = model.busy_until
        assert model.try_occupy(0.0, 0.8) is None
        assert model.busy_until == before
        assert model.requests_shed == 1
        assert model.requests_served == 2

    def test_admit_is_try_occupy_of_service_time(self):
        a = ServerCpuModel(2.0, per_request_cpu=0.01, max_backlog_seconds=5.0)
        b = ServerCpuModel(2.0, per_request_cpu=0.01, max_backlog_seconds=5.0)
        for now in (0.0, 0.001, 0.002, 4.0):
            assert a.admit(now) == b.try_occupy(now, b.service_time())

    def test_reset_clears_backlog_and_window(self):
        model = ServerCpuModel(1.0)
        model.occupy(0.0, 3.0)
        model.reset()
        assert model.busy_until == 0.0
        assert model.backlog_seconds(0.0) == 0.0
        assert model.take_window_busy() == 0.0


class TestUtilization:
    def test_idle_model_reports_zero(self):
        model = ServerCpuModel(4.0)
        assert model.utilization(1.0, connections=0) == 0.0

    def test_saturated_window_reports_full_share(self):
        model = ServerCpuModel(1.0)
        model.occupy(0.0, 1.0)
        model.take_window_busy()  # consume, then refill a fresh window
        model.occupy(1.0, 2.0)
        assert model.utilization(2.0, connections=0) == pytest.approx(1.0)


class TestBrokerEquivalence:
    """The broker's CPU accounting now lives on ServerCpuModel; the pinned
    kernel checksums prove byte-equality end-to-end, this proves it stays."""

    def test_broker_cpu_is_a_server_cpu_model(self, sim, network, regions):
        from repro.mq import Broker, BrokerConfig

        broker = Broker(sim, network, "broker", regions[0])
        assert isinstance(broker.cpu, ServerCpuModel)
        config = BrokerConfig()
        assert broker.cpu.cores == config.cores
        assert broker.cpu.per_request_cpu == config.per_message_cpu
        assert broker.cpu.per_connection_cpu == config.per_connection_cpu
        assert broker.cpu.max_backlog_seconds == config.max_backlog_seconds
