"""FOCUS over non-default topologies: two regions, single region, edge sites."""


from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, drain, run_query
from repro.sim.topology import Region, Topology


def two_region_topology():
    return Topology(
        regions=[
            Region("eu-west-1", 53.34, -6.26),   # Dublin
            Region("eu-central-1", 50.11, 8.68),  # Frankfurt
        ]
    )


class TestTwoRegions:
    def test_cluster_forms_and_answers(self):
        scenario = build_focus_cluster(
            16, seed=301, with_store=False, topology=two_region_topology()
        )
        drain(scenario, 15.0)
        regions = {a.region for a in scenario.agents}
        assert regions == {"eu-west-1", "eu-central-1"}
        response = run_query(
            scenario, Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=0.0)
        )
        assert len(response.matches) == 16

    def test_intra_europe_latency_small(self):
        topo = two_region_topology()
        # Dublin <-> Frankfurt is ~1,100 km: single-digit ms one-way.
        assert topo.latency("eu-west-1", "eu-central-1") < 0.015


class TestSingleRegion:
    def test_single_region_deployment(self):
        topo = Topology(regions=[Region("on-prem", 40.0, -80.0)])
        scenario = build_focus_cluster(
            12, seed=302, with_store=False, topology=topo
        )
        drain(scenario, 15.0)
        assert all(a.region == "on-prem" for a in scenario.agents)
        response = run_query(
            scenario,
            Query([QueryTerm.at_most("cpu_percent", 50.0)], freshness_ms=0.0),
        )
        expected = {
            a.node_id for a in scenario.agents if a.dynamic["cpu_percent"] <= 50.0
        }
        assert set(response.node_ids) == expected

    def test_geo_split_never_triggers_in_one_region(self):
        from repro.core.config import FocusConfig

        topo = Topology(regions=[Region("on-prem", 40.0, -80.0)])
        scenario = build_focus_cluster(
            12, seed=303, with_store=False, topology=topo,
            config=FocusConfig(geo_split_km=10.0),
        )
        drain(scenario, 25.0)
        metric = scenario.service.metrics.get_counter("geo_splits")
        assert metric is None or metric.value == 0


class TestManyRegions:
    def test_eight_region_spread(self):
        regions = [
            Region(f"edge-{i}", 25.0 + i * 4.0, -120.0 + i * 8.0)
            for i in range(8)
        ]
        scenario = build_focus_cluster(
            32, seed=304, with_store=False, topology=Topology(regions=regions)
        )
        drain(scenario, 15.0)
        assert len({a.region for a in scenario.agents}) == 8
        response = run_query(
            scenario, Query([QueryTerm.at_least("disk_gb", 0.0)], freshness_ms=0.0)
        )
        assert len(response.matches) == 32
