"""Execute the code samples embedded in the documentation.

Documentation that doesn't run is worse than none: these tests execute the
package docstring example and the README quickstart verbatim-equivalent so
the docs can't drift from the API.
"""

import re
import pathlib



class TestPackageDocstring:
    def test_init_example_runs(self, capsys):
        import repro

        example = re.search(r"Quickstart::\n\n((?:    .*\n|\n)+)", repro.__doc__)
        assert example, "package docstring lost its Quickstart example"
        code = "\n".join(line[4:] for line in example.group(1).splitlines())
        exec(compile(code, "<repro.__doc__>", "exec"), {})
        out = capsys.readouterr().out
        assert "node" in out  # printed matches


class TestReadmeQuickstart:
    def test_readme_python_block_runs(self, capsys):
        readme = (
            pathlib.Path(__file__).resolve().parent.parent / "README.md"
        ).read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README lost its python quickstart"
        exec(compile(blocks[0], "<README.md>", "exec"), {})
        out = capsys.readouterr().out
        assert "node-" in out
