"""Documentation meta-tests: every public module and class is documented."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent


def all_modules():
    names = []
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


MODULES = all_modules()


class TestDocstrings:
    @pytest.mark.parametrize("name", MODULES)
    def test_module_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, (
            f"module {name} lacks a meaningful docstring"
        )

    @pytest.mark.parametrize("name", MODULES)
    def test_public_classes_documented(self, name):
        module = importlib.import_module(name)
        for attr_name, obj in vars(module).items():
            if attr_name.startswith("_") or not inspect.isclass(obj):
                continue
            if obj.__module__ != name:
                continue  # re-export
            assert obj.__doc__, f"{name}.{attr_name} lacks a docstring"

    @pytest.mark.parametrize("name", MODULES)
    def test_public_functions_documented(self, name):
        module = importlib.import_module(name)
        for attr_name, obj in vars(module).items():
            if attr_name.startswith("_") or not inspect.isfunction(obj):
                continue
            if obj.__module__ != name:
                continue
            assert obj.__doc__, f"{name}.{attr_name} lacks a docstring"


class TestProjectFiles:
    def test_required_documents_exist(self):
        root = SRC_ROOT.parent.parent
        for filename in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = root / filename
            assert path.exists(), filename
            assert len(path.read_text()) > 1000, f"{filename} looks like a stub"

    def test_design_covers_every_figure(self):
        design = (SRC_ROOT.parent.parent / "DESIGN.md").read_text()
        for artefact in ("Fig. 3", "Fig. 7a", "Fig. 7b", "Fig. 7c",
                         "Fig. 8a", "Fig. 8b", "Fig. 8c",
                         "Table I", "Table II"):
            assert artefact in design, f"DESIGN.md misses {artefact}"

    def test_every_bench_mentioned_in_experiments(self):
        root = SRC_ROOT.parent.parent
        experiments = (root / "EXPERIMENTS.md").read_text()
        for bench in sorted((root / "benchmarks").glob("bench_*.py")):
            assert bench.name in experiments, (
                f"EXPERIMENTS.md does not reference {bench.name}"
            )
