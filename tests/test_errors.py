"""The exception hierarchy: one base, meaningful subtyping."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_focus_family(self):
        for cls in (errors.RegistrationError, errors.QueryError,
                    errors.QueryTimeout, errors.GroupError):
            assert issubclass(cls, errors.FocusError)

    def test_store_family(self):
        assert issubclass(errors.QuorumError, errors.StoreError)

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.QuorumError("quorum lost")
        with pytest.raises(errors.FocusError):
            raise errors.QueryTimeout("too slow")

    def test_distinct_families(self):
        assert not issubclass(errors.BrokerError, errors.FocusError)
        assert not issubclass(errors.SimulationError, errors.NetworkError)
