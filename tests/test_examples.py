"""Smoke tests for the example scripts.

Every example must at least import and expose a main(); the quick ones are
executed end-to-end in-process (they are deterministic simulations, so this
doubles as an integration test of the documented workflows).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ("quickstart", "vnf_homing", "trace_replay", "geo_split_monitoring")


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        assert set(FAST_EXAMPLES) <= set(ALL_EXAMPLES)
        assert len(ALL_EXAMPLES) >= 5

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), f"{name} lacks main()"

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_examples_run(self, name, capsys):
        module = load_example(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report
