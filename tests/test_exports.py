"""Public API surface: every __all__ entry resolves, every subpackage imports."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.gossip",
    "repro.store",
    "repro.mq",
    "repro.core",
    "repro.baselines",
    "repro.workloads",
    "repro.harness",
    "repro.openstack",
    "repro.onap",
]


class TestPublicSurface:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", None)
        assert exported, f"{name} should declare __all__"
        for symbol in exported:
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_sorted_and_unique(self, name):
        module = importlib.import_module(name)
        exported = list(getattr(module, "__all__", ()))
        assert exported == sorted(exported), f"{name}.__all__ is not sorted"
        assert len(exported) == len(set(exported)), f"{name}.__all__ has duplicates"

    def test_headline_symbols_reachable(self):
        from repro.core import FocusConfig, FocusService, NodeAgent, Query  # noqa: F401
        from repro.gossip import SerfAgent, SwimAgent  # noqa: F401
        from repro.harness import build_focus_cluster, run_query  # noqa: F401
        from repro.sim import Network, Simulator  # noqa: F401
