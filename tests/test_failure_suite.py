"""Failure suite: deterministic reports with the expected resilience shape."""

from repro.harness.failure_suite import (
    SCENARIOS,
    report_checksum,
    run_hot_key_overload,
    run_herd_reregistration,
    run_query_storm,
    run_server_failover,
    run_single_node_crash,
)

REPORT_KEYS = {
    "scenario", "seed", "num_nodes", "fault_log", "skipped_faults",
    "fault_window", "detection_latency_s", "reconvergence_s", "counters",
}


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = run_single_node_crash(seed=5, num_nodes=12)
        b = run_single_node_crash(seed=5, num_nodes=12)
        assert a == b
        assert report_checksum(a) == report_checksum(b)

    def test_different_seed_different_report(self):
        a = run_single_node_crash(seed=5, num_nodes=12)
        b = run_single_node_crash(seed=6, num_nodes=12)
        assert report_checksum(a) != report_checksum(b)


class TestReportShape:
    def test_single_node_crash_report(self):
        report = run_single_node_crash(seed=5, num_nodes=12)
        assert set(report) == REPORT_KEYS
        assert report["scenario"] == "single-node-crash"
        # Crash and restart both made it into the fault log.
        actions = [entry["action"] for entry in report["fault_log"]]
        assert any(a.startswith("crash node-") for a in actions)
        assert any(a.startswith("restart node-") for a in actions)
        assert report["skipped_faults"] == []
        # The crashed node vanished from answers within a few probe periods.
        assert report["detection_latency_s"] is not None
        assert report["detection_latency_s"] <= 3.0
        window = report["fault_window"]
        assert window["polls"] > 0
        assert 0.0 <= window["false_negative_rate"] <= 1.0
        assert 0.0 <= window["stale_answer_rate"] <= 1.0
        assert report["reconvergence_s"] >= 0.0

    def test_server_failover_detects_outage_and_recovers(self):
        report = run_server_failover(seed=5, num_nodes=12)
        # During the outage the probe times out rather than lying.
        assert report["fault_window"]["timeouts"] > 0
        assert report["detection_latency_s"] is not None
        # The restarted server answered probes again before the run ended.
        assert report["reconvergence_s"] < 15.0
        assert report["counters"].get("rpc.timeouts", 0) > 0

    def test_registry_names_all_scenarios(self):
        assert set(SCENARIOS) == {
            "single-node-crash", "region-partition", "churn-storm",
            "focus-server-failover", "shard-failover",
            "query-storm", "herd-reregistration", "hot-key-overload",
        }


class TestOverloadScenarios:
    """The three overload scenarios must hold their `asserts` contract —
    the same booleans CI's chaos job re-checks from the resilience report."""

    def test_query_storm_contract(self):
        report = run_query_storm(seed=0)
        assert all(report["asserts"].values()), report["asserts"]
        # The storm actually crossed the knee: the defenses had to act.
        assert report["queries_shed"] + report["queries_throttled"] > 0
        # Any breaker that opened mid-storm re-closed by the end.
        assert report["breakers"]["all_closed"]

    def test_herd_reregistration_contract(self):
        report = run_herd_reregistration(seed=0)
        assert all(report["asserts"].values()), report["asserts"]
        # Every herd member re-registered and none were shed: the bulkhead
        # kept the registration lane alive under the query load.
        assert report["registrations_shed"] == 0

    def test_hot_key_overload_contract(self):
        report = run_hot_key_overload(seed=0)
        assert all(report["asserts"].values()), report["asserts"]
        # The hot shard's breaker tripped and the router served stale
        # cache answers stamped with a positive staleness bound.
        assert report["breakers"]["any_opened"]
        assert report["stale_served"] > 0

    def test_query_storm_deterministic(self):
        a = run_query_storm(seed=3, num_nodes=16)
        b = run_query_storm(seed=3, num_nodes=16)
        assert a == b
