"""Property-based end-to-end invariants of the FOCUS query pipeline.

One warm cluster, arbitrary generated queries: the directed-pull answer must
equal ground truth computed from the agents' actual state — for any
combination of bounds, any attribute mix, any limit.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, run_query
from repro.workloads import node_spec_factory

NUM_NODES = 32


@pytest.fixture(scope="module")
def cluster():
    scenario = build_focus_cluster(
        NUM_NODES,
        seed=202,
        warm_start=True,
        with_store=False,
        node_factory=node_spec_factory(seed=202),
    )
    scenario.sim.run_until(3.0)
    return scenario


ATTRIBUTE_RANGES = {
    "cpu_percent": (0.0, 100.0),
    "vcpus": (0.0, 8.0),
    "ram_mb": (0.0, 16384.0),
    "disk_gb": (0.0, 100.0),
}


@st.composite
def dynamic_terms(draw):
    name = draw(st.sampled_from(sorted(ATTRIBUTE_RANGES)))
    low, high = ATTRIBUTE_RANGES[name]
    a = draw(st.floats(min_value=low, max_value=high))
    b = draw(st.floats(min_value=low, max_value=high))
    lower, upper = min(a, b), max(a, b)
    shape = draw(st.sampled_from(["range", "at_least", "at_most"]))
    if shape == "at_least":
        return QueryTerm(name, lower=lower)
    if shape == "at_most":
        return QueryTerm(name, upper=upper)
    return QueryTerm(name, lower=lower, upper=upper)


@st.composite
def focus_queries(draw):
    terms = draw(
        st.lists(dynamic_terms(), min_size=1, max_size=3,
                 unique_by=lambda t: t.name)
    )
    if draw(st.booleans()):
        terms.append(QueryTerm.exact("arch", draw(st.sampled_from(["x86", "arm64"]))))
    limit = draw(st.none() | st.integers(min_value=1, max_value=NUM_NODES))
    return Query(terms, limit=limit, freshness_ms=0.0)


class TestExactness:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(query=focus_queries())
    def test_directed_pull_matches_ground_truth(self, cluster, query):
        expected = {
            agent.node_id
            for agent in cluster.agents
            if query.matches(agent.attributes())
        }
        response = run_query(cluster, query)
        got = set(response.node_ids)
        if query.limit is None:
            assert got == expected
        else:
            assert len(got) == min(query.limit, len(expected))
            assert got <= expected

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(query=focus_queries())
    def test_every_returned_record_satisfies_the_query(self, cluster, query):
        response = run_query(cluster, query)
        for match in response.matches:
            assert query.matches(match["attrs"]), match
