"""Cross-simulation isolation: no interpreter-global mutable state.

Two seeded simulations built in the same process must produce identical
checksums regardless of which ran first (or whether another simulation ran
at all) — the regression this pins is any module-level cache, counter, or
registry that one ``Simulator`` mutates and a later one observes. The same
file holds the ``derive_rng`` label-collision guard tests (a shared stream
between two components is the in-process flavour of the same bug).
"""

import pytest

from repro.errors import SimulationError
from repro.sim.loop import Simulator
from repro.sim.parallel.workload import run_serial, summary_checksum


def _checksum(nodes, profile="v1"):
    return summary_checksum(run_serial(nodes, 1.0, profile=profile))


def test_two_sims_same_process_identical_in_both_orders():
    # Order 1: A then B; order 2: B then A — all in this one interpreter.
    a_first = _checksum(24)
    b_second = _checksum(36)
    b_first = _checksum(36)
    a_second = _checksum(24)
    assert a_first == a_second, (
        "a 24-node seeded run changed because a different simulation ran "
        "before it — interpreter-global state is leaking between Simulators"
    )
    assert b_second == b_first


def test_profiles_do_not_contaminate_each_other():
    pytest.importorskip("numpy")
    v1_before = _checksum(24)
    v2 = _checksum(24, profile="v2")
    v1_after = _checksum(24)
    assert v1_before == v1_after, (
        "running a v2-profile simulation changed a later v1 run's checksum"
    )
    # Different profiles are different byte streams by design.
    assert v1_before != v2


def test_repeated_identical_runs_are_stable():
    assert _checksum(24) == _checksum(24)


# ------------------------------------------------------ label-collision guard
def test_strict_mode_raises_on_duplicate_label():
    sim = Simulator(seed=1, strict_rng_labels=True)
    sim.derive_rng("gossip/n0")
    with pytest.raises(SimulationError, match="gossip/n0"):
        sim.derive_rng("gossip/n0")


def test_default_mode_tracks_but_does_not_raise():
    sim = Simulator(seed=1)
    sim.derive_rng("swim/a0")
    sim.derive_rng("swim/a0")  # crash-restart re-derivation is legitimate
    sim.derive_rng("swim/a1")
    assert sim.rng_label_collisions() == {("derive_rng", "swim/a0"): 2}


def test_same_label_different_methods_is_not_a_collision():
    pytest.importorskip("numpy")
    sim = Simulator(seed=1, strict_rng_labels=True)
    sim.derive_rng("network")
    sim.derive_np_rng("network")  # unrelated algorithm, unrelated stream
    assert sim.rng_label_collisions() == {}


def test_derived_streams_are_per_simulator_not_global():
    # Identical labels + identical seeds -> identical streams; a different
    # seed -> a different stream. Neither depends on derivation history.
    a = Simulator(seed=7).derive_rng("x")
    Simulator(seed=7).derive_rng("unrelated")  # must not perturb anything
    b = Simulator(seed=7).derive_rng("x")
    c = Simulator(seed=8).derive_rng("x")
    draws_a = [a.random() for _ in range(4)]
    assert draws_a == [b.random() for _ in range(4)]
    assert draws_a != [c.random() for _ in range(4)]
