"""Integration tests for Serf-style user events and queries."""

import pytest

from repro.gossip import SerfAgent, SerfConfig


def build_group(sim, network, count, regions, config=None):
    agents = []
    for i in range(count):
        agent = SerfAgent(
            sim, network, f"n{i}", f"n{i}/serf", regions[i % len(regions)],
            config or SerfConfig(),
        )
        agent.start()
        agents.append(agent)
    for agent in agents[1:]:
        agent.join([agents[0].address])
    return agents


class TestUserEvents:
    def test_event_reaches_every_member(self, sim, network, regions):
        agents = build_group(sim, network, 10, regions)
        sim.run_until(5.0)
        seen = []
        for agent in agents:
            agent.on_event("deploy", lambda p, o, name=agent.name: seen.append(name))
        agents[4].user_event("deploy", {"version": 2})
        sim.run_until(8.0)
        assert sorted(seen) == sorted(a.name for a in agents)

    def test_event_delivered_exactly_once(self, sim, network, regions):
        agents = build_group(sim, network, 8, regions)
        sim.run_until(5.0)
        counts = {a.name: 0 for a in agents}

        def make_handler(name):
            def handler(payload, origin):
                counts[name] += 1
            return handler

        for agent in agents:
            agent.on_event("e", make_handler(agent.name))
        agents[0].user_event("e", {})
        sim.run_until(10.0)
        assert all(c == 1 for c in counts.values()), counts

    def test_event_payload_and_origin(self, sim, network, regions):
        agents = build_group(sim, network, 4, regions)
        sim.run_until(3.0)
        received = []
        agents[2].on_event("cfg", lambda p, o: received.append((p, o)))
        agents[0].user_event("cfg", {"k": "v"})
        sim.run_until(6.0)
        assert received == [({"k": "v"}, "n0")]

    def test_multiple_events_all_disseminate(self, sim, network, regions):
        agents = build_group(sim, network, 6, regions)
        sim.run_until(3.0)
        seen = []
        agents[5].on_event("tick", lambda p, o: seen.append(p["i"]))
        for i in range(5):
            sim.schedule(3.5 + i * 0.2, agents[0].user_event, "tick", {"i": i})
        sim.run_until(10.0)
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_unhandled_event_ignored(self, sim, network, regions):
        agents = build_group(sim, network, 3, regions)
        sim.run_until(2.0)
        agents[0].user_event("nobody-listens", {})
        sim.run_until(4.0)  # must not raise


class TestQueries:
    def test_query_collects_all_responses(self, sim, network, regions):
        agents = build_group(sim, network, 12, regions)
        sim.run_until(5.0)
        for agent in agents:
            agent.on_query("state", lambda p, o, name=agent.name: {"me": name})
        results = {}
        agents[3].query("state", {}, results.update, timeout=2.0)
        sim.run_until(8.0)
        assert len(results) == 12
        assert results["n7"] == {"me": "n7"}

    def test_query_completes_before_timeout_when_all_answer(self, sim, network, regions):
        agents = build_group(sim, network, 8, regions)
        sim.run_until(5.0)
        for agent in agents:
            agent.on_query("s", lambda p, o: {"ok": True})
        done_at = []
        agents[0].query("s", {}, lambda r: done_at.append(sim.now), timeout=5.0)
        sim.run_until(11.0)
        assert done_at and done_at[0] < 5.0 + 2.0  # early completion, not timeout

    def test_single_member_query_completes(self, sim, network, regions):
        agent = SerfAgent(sim, network, "solo", "solo/serf", regions[0])
        agent.start()
        agent.on_query("s", lambda p, o: {"v": 1})
        results = {}
        sim.run_until(1.0)
        agent.query("s", {}, results.update, timeout=2.0)
        sim.run_until(4.0)
        assert results == {"solo": {"v": 1}}

    def test_silent_handler_excluded(self, sim, network, regions):
        agents = build_group(sim, network, 6, regions)
        sim.run_until(5.0)
        for agent in agents:
            # Odd-numbered members stay silent.
            idx = int(agent.name[1:])
            agent.on_query(
                "s", lambda p, o, i=idx: {"i": i} if i % 2 == 0 else None
            )
        results = {}
        agents[0].query("s", {}, results.update, timeout=1.5)
        sim.run_until(10.0)
        assert set(results) == {"n0", "n2", "n4"}

    def test_timeout_yields_partial_results(self, sim, network, regions):
        agents = build_group(sim, network, 6, regions)
        sim.run_until(5.0)
        for agent in agents:
            agent.on_query("s", lambda p, o: {"ok": True})
        # Cut one member off right before the query.
        isolated = agents[5]
        for other in agents[:5]:
            network.block(other.address, isolated.address)
        results = {}
        done_at = []
        agents[0].query(
            "s", {}, lambda r: (results.update(r), done_at.append(sim.now)),
            timeout=1.0,
        )
        sim.run_until(10.0)
        assert done_at[0] == pytest.approx(6.0, abs=0.2)
        assert 1 <= len(results) <= 5

    def test_query_crossing_member_crash(self, sim, network, regions):
        agents = build_group(sim, network, 8, regions)
        sim.run_until(5.0)
        for agent in agents:
            agent.on_query("s", lambda p, o: {"ok": True})
        agents[6].stop()
        results = {}
        agents[1].query("s", {}, results.update, timeout=1.5)
        sim.run_until(10.0)
        assert "n6" not in results
        assert len(results) >= 6
