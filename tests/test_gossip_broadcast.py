"""Unit tests for the piggyback broadcast queue."""

from repro.gossip.broadcast import BroadcastQueue, retransmit_limit


class TestRetransmitLimit:
    def test_grows_logarithmically(self):
        assert retransmit_limit(4, 1) == 4
        assert retransmit_limit(4, 3) == 8
        assert retransmit_limit(4, 100) < retransmit_limit(4, 10000)

    def test_minimum_group(self):
        assert retransmit_limit(4, 0) == 4


class TestQueue:
    def test_take_returns_payloads(self):
        q = BroadcastQueue()
        q.enqueue(("m", "a"), {"v": 1}, group_size=4)
        assert q.take(5) == [{"v": 1}]

    def test_exhausted_broadcast_removed(self):
        q = BroadcastQueue(retransmit_mult=1)
        q.enqueue(("m", "a"), {"v": 1}, group_size=1, transmits=2)
        assert q.take(5)
        assert q.take(5)
        assert q.take(5) == []
        assert q.empty

    def test_same_key_replaces(self):
        q = BroadcastQueue()
        q.enqueue(("m", "a"), {"v": 1}, group_size=4)
        q.enqueue(("m", "a"), {"v": 2}, group_size=4)
        assert len(q) == 1
        assert q.take(5) == [{"v": 2}]

    def test_least_transmitted_first(self):
        q = BroadcastQueue()
        q.enqueue(("m", "old"), {"v": "old"}, group_size=4)
        q.take(1)  # old has been transmitted once
        q.enqueue(("m", "new"), {"v": "new"}, group_size=4)
        batch = q.take(1)
        assert batch == [{"v": "new"}]

    def test_take_respects_max_items(self):
        q = BroadcastQueue()
        for i in range(10):
            q.enqueue(("m", str(i)), {"v": i}, group_size=4)
        assert len(q.take(3)) == 3

    def test_invalidate(self):
        q = BroadcastQueue()
        q.enqueue(("m", "a"), {"v": 1}, group_size=4)
        q.invalidate(("m", "a"))
        assert q.empty

    def test_take_with_size_sums_payloads(self):
        q = BroadcastQueue()
        q.enqueue(("m", "a"), {"v": 1}, group_size=4, size=100)
        q.enqueue(("m", "b"), {"v": 2}, group_size=4, size=50)
        payloads, size = q.take_with_size(5)
        assert len(payloads) == 2
        assert size == 150

    def test_take_zero(self):
        q = BroadcastQueue()
        q.enqueue(("m", "a"), {"v": 1}, group_size=4)
        assert q.take(0) == []

    def test_clear(self):
        q = BroadcastQueue()
        q.enqueue(("m", "a"), {}, group_size=4)
        q.clear()
        assert q.empty

    def test_peek_keys(self):
        q = BroadcastQueue()
        q.enqueue(("m", "a"), {}, group_size=4)
        assert q.peek_keys() == [("m", "a")]
