"""Tests for Serf-style event coalescing."""

import pytest

from repro.gossip import EventCoalescer, SerfAgent, SerfConfig


class TestCoalescer:
    def test_single_event_delivered_after_window(self, sim):
        coalescer = EventCoalescer(sim, window=0.5)
        seen = []
        handler = coalescer.wrap(lambda p, o: seen.append((p, o)))
        handler({"v": 1}, "n0")
        sim.run_until(0.4)
        assert seen == []
        sim.run_until(0.6)
        assert seen == [({"v": 1}, "n0")]

    def test_burst_collapses_to_latest(self, sim):
        coalescer = EventCoalescer(sim, window=0.5)
        seen = []
        handler = coalescer.wrap(lambda p, o: seen.append(p["v"]))
        for v in range(5):
            handler({"v": v}, "n0")
        sim.run_until(1.0)
        assert seen == [4]
        assert coalescer.coalesced == 4
        assert coalescer.delivered == 1

    def test_distinct_keys_kept_separately(self, sim):
        coalescer = EventCoalescer(sim, window=0.5)
        seen = []
        handler = coalescer.wrap(lambda p, o: seen.append((o, p["v"])))
        handler({"v": 1}, "a")
        handler({"v": 2}, "b")
        handler({"v": 3}, "a")  # supersedes a's first event
        sim.run_until(1.0)
        assert sorted(seen) == [("a", 3), ("b", 2)]

    def test_custom_key_function(self, sim):
        coalescer = EventCoalescer(sim, window=0.5)
        seen = []
        handler = coalescer.wrap(
            lambda p, o: seen.append(p), key=lambda p, o: p["shard"]
        )
        handler({"shard": 1, "v": "old"}, "a")
        handler({"shard": 1, "v": "new"}, "b")  # same shard, different origin
        sim.run_until(1.0)
        assert seen == [{"shard": 1, "v": "new"}]

    def test_windows_reopen(self, sim):
        coalescer = EventCoalescer(sim, window=0.5)
        seen = []
        handler = coalescer.wrap(lambda p, o: seen.append(p["v"]))
        handler({"v": 1}, "a")
        sim.run_until(1.0)
        handler({"v": 2}, "a")
        sim.run_until(2.0)
        assert seen == [1, 2]

    def test_flush_now(self, sim):
        coalescer = EventCoalescer(sim, window=10.0)
        seen = []
        handler = coalescer.wrap(lambda p, o: seen.append(p))
        handler({"v": 1}, "a")
        coalescer.flush_now()
        assert seen == [{"v": 1}]

    def test_single_handler_only(self, sim):
        coalescer = EventCoalescer(sim, window=0.5)
        coalescer.wrap(lambda p, o: None)
        with pytest.raises(RuntimeError):
            coalescer.wrap(lambda p, o: None)

    def test_positive_window_required(self, sim):
        with pytest.raises(ValueError):
            EventCoalescer(sim, window=0.0)

    def test_quiescence_must_fit_in_window(self, sim):
        with pytest.raises(ValueError):
            EventCoalescer(sim, window=0.5, quiescence=0.5)
        with pytest.raises(ValueError):
            EventCoalescer(sim, window=0.5, quiescence=0.0)

    def test_quiet_burst_flushes_early(self, sim):
        coalescer = EventCoalescer(sim, window=10.0, quiescence=0.2)
        seen = []
        handler = coalescer.wrap(lambda p, o: seen.append(p["v"]))
        handler({"v": 1}, "a")
        handler({"v": 2}, "a")
        # The burst is over; the handler should fire one quiescence span
        # after the last event, not at the 10 s hard deadline.
        sim.run_until(0.19)
        assert seen == []
        sim.run_until(0.3)
        assert seen == [2]

    def test_steady_stream_still_flushes_at_deadline(self, sim):
        coalescer = EventCoalescer(sim, window=1.0, quiescence=0.3)
        seen = []
        handler = coalescer.wrap(lambda p, o: seen.append(p["v"]))
        # Events every 0.24 s never go quiet, so only the window deadline
        # can flush — the quiescent flush must not starve forever nor fire
        # mid-stream.
        for i in range(10):
            sim.schedule(i * 0.24, handler, {"v": i}, "a")
        sim.run_until(0.99)
        assert seen == []
        sim.run_until(1.1)
        assert seen == [4]  # events 0-4 fell inside the first window

    def test_stale_deadline_after_early_flush_is_inert(self, sim):
        coalescer = EventCoalescer(sim, window=1.0, quiescence=0.2)
        seen = []
        handler = coalescer.wrap(lambda p, o: seen.append(p["v"]))
        handler({"v": 1}, "a")
        sim.run_until(0.5)  # quiescent flush fired at 0.2
        assert seen == [1]
        handler({"v": 2}, "a")  # second window opens at 0.5
        sim.run_until(2.0)
        # The first window's 1.0 s hard deadline (still queued when the
        # early flush ran) must not deliver the second window's event early
        # or twice.
        assert seen == [1, 2]
        assert coalescer.delivered == 2


class TestWithSerf:
    def test_coalesces_gossip_event_storm(self, sim, network, regions):
        agents = []
        for i in range(6):
            agent = SerfAgent(sim, network, f"n{i}", f"n{i}/serf", regions[0],
                              SerfConfig())
            agent.start()
            agents.append(agent)
        for agent in agents[1:]:
            agent.join([agents[0].address])
        sim.run_until(5.0)
        coalescer = EventCoalescer(sim, window=1.0)
        seen = []
        agents[5].on_event(
            "cfg", coalescer.wrap(lambda p, o: seen.append(p["rev"]))
        )
        # A burst of 10 config revisions from the same origin.
        for rev in range(10):
            sim.schedule(5.0 + rev * 0.05, agents[0].user_event, "cfg", {"rev": rev})
        sim.run_until(12.0)
        assert seen, "coalesced handler never fired"
        assert seen[-1] == 9  # the newest revision always wins
        assert len(seen) < 10  # the storm was collapsed
