"""SWIM/Serf edge cases: churn, rejoin, conflicting updates, piggyback."""


from repro.gossip import SerfAgent, SerfConfig, SwimAgent, SwimConfig
from repro.gossip.member import Member, MemberState


def build_group(sim, network, count, regions, cls=SwimAgent, config=None):
    agents = []
    for i in range(count):
        agent = cls(
            sim, network, f"n{i}", f"n{i}/g", regions[i % len(regions)],
            config or (SerfConfig() if cls is SerfAgent else SwimConfig()),
        )
        agent.start()
        agents.append(agent)
    for agent in agents[1:]:
        agent.join([agents[0].address])
    return agents


class TestChurn:
    def test_rapid_join_leave_converges(self, sim, network, regions):
        agents = build_group(sim, network, 6, regions)
        sim.run_until(5.0)
        # A seventh node joins, leaves, and rejoins under a new incarnation
        # of the same name (process restart).
        first = SwimAgent(sim, network, "n6", "n6/g", regions[0])
        first.start()
        first.join([agents[0].address])
        sim.run_until(8.0)
        first.leave()
        sim.run_until(12.0)
        second = SwimAgent(sim, network, "n6", "n6/g2", regions[0])
        second.start()
        second.incarnation = 5  # restarted with a fresher incarnation
        second.members.upsert(second._self_member())
        second.join([agents[0].address])
        sim.run_until(25.0)
        for agent in agents:
            record = agent.members.get("n6")
            assert record is not None
            assert record.state == MemberState.ALIVE
            assert record.address == "n6/g2"

    def test_half_group_crash(self, sim, network, regions):
        agents = build_group(sim, network, 10, regions)
        sim.run_until(5.0)
        for agent in agents[5:]:
            agent.stop()
        sim.run_until(60.0)
        survivors = agents[:5]
        for agent in survivors:
            assert agent.group_size() == 5

    def test_sequential_joins_during_failure_detection(self, sim, network, regions):
        agents = build_group(sim, network, 5, regions)
        sim.run_until(3.0)
        agents[4].stop()
        late = SwimAgent(sim, network, "late", "late/g", regions[1])
        sim.schedule(4.0, late.start)
        sim.schedule(4.1, late.join, [agents[0].address])
        sim.run_until(40.0)
        assert late.group_size() == 5  # 4 survivors + itself


class TestConflictingUpdates:
    def test_concurrent_suspicion_and_alive(self, sim, network, regions):
        agents = build_group(sim, network, 6, regions)
        sim.run_until(5.0)
        target = agents[2]
        # Two different agents inject contradictory records at equal
        # incarnation; dead/suspect must win at equal inc, then refutation
        # (higher inc) must win overall.
        suspect = Member("n2", target.address, target.region,
                         incarnation=target.incarnation, state=MemberState.SUSPECT)
        agents[0].members.apply(suspect)
        agents[0]._broadcast_member(suspect)
        sim.run_until(30.0)
        for agent in agents:
            record = agent.members.get("n2")
            assert record.state == MemberState.ALIVE
            assert record.incarnation > 0

    def test_stale_alive_cannot_resurrect_left_member(self, sim, network, regions):
        agents = build_group(sim, network, 5, regions)
        sim.run_until(5.0)
        leaver = agents[3]
        incarnation = leaver.incarnation
        leaver.leave()
        sim.run_until(10.0)
        stale = Member("n3", leaver.address, leaver.region,
                       incarnation=incarnation, state=MemberState.ALIVE)
        assert not agents[0].members.apply(stale)


class TestPiggyback:
    def test_updates_ride_on_probe_messages(self, sim, network, regions):
        """With the gossip timer quiet, probe piggyback alone must spread
        membership (disseminate via ping/ack)."""
        config = SwimConfig(gossip_interval=1000.0)  # effectively disable
        agents = build_group(sim, network, 4, regions, config=config)
        sim.run_until(40.0)  # probes + anti-entropy sync at 30s
        assert all(a.group_size() == 4 for a in agents)

    def test_no_gossip_messages_when_idle(self, sim, network, regions):
        agents = build_group(sim, network, 5, regions)
        sim.run_until(10.0)
        sent_before = network.metrics.counter("messages_sent").value

        taps = []

        def tap(message):
            if message.kind == "swim.gossip":
                taps.append(message)

        network.add_delivery_tap(tap)
        sim.run_until(25.0)  # quiet period, before the 30 s sync
        # A converged, idle group sends probes but (almost) no gossip.
        assert len(taps) <= 4


class TestSerfQueriesUnderChurn:
    def test_query_during_member_join(self, sim, network, regions):
        agents = build_group(sim, network, 8, regions, cls=SerfAgent)
        sim.run_until(5.0)
        for agent in agents:
            agent.on_query("s", lambda p, o: {"ok": True})
        joiner = SerfAgent(sim, network, "n8", "n8/g", regions[0])
        joiner.on_query("s", lambda p, o: {"ok": True})
        sim.schedule(5.5, joiner.start)
        sim.schedule(5.6, joiner.join, [agents[0].address])
        results = {}
        sim.schedule(5.7, agents[0].query, "s", {}, results.update)
        sim.run_until(12.0)
        # At least the original group answered; the joiner may or may not
        # have been included depending on dissemination timing.
        assert len(results) >= 8

    def test_two_concurrent_queries_do_not_interfere(self, sim, network, regions):
        agents = build_group(sim, network, 6, regions, cls=SerfAgent)
        sim.run_until(5.0)
        for agent in agents:
            agent.on_query("a", lambda p, o: {"which": "a"})
            agent.on_query("b", lambda p, o: {"which": "b"})
        results_a, results_b = {}, {}
        agents[0].query("a", {}, results_a.update)
        agents[1].query("b", {}, results_b.update)
        sim.run_until(10.0)
        assert len(results_a) == 6
        assert len(results_b) == 6
        assert all(r["which"] == "a" for r in results_a.values())
        assert all(r["which"] == "b" for r in results_b.values())


class TestSuspicionScaling:
    def test_timeout_grows_with_group_size(self):
        config = SwimConfig()
        assert config.suspicion_timeout(4) < config.suspicion_timeout(400)

    def test_minimum_group(self):
        config = SwimConfig()
        assert config.suspicion_timeout(0) > 0
