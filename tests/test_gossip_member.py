"""Unit and property tests for membership records and SWIM ordering rules."""

from hypothesis import given, strategies as st

from repro.gossip.member import (
    Member,
    MemberList,
    MemberState,
    RANK_BY_VALUE,
    STATE_BY_VALUE,
    supersedes,
)

states = st.sampled_from(list(MemberState))
incarnations = st.integers(min_value=0, max_value=10)


def member(name="n1", state=MemberState.ALIVE, inc=0):
    return Member(name, f"{name}/addr", "us-east-2", incarnation=inc, state=state)


class TestSupersedes:
    def test_higher_incarnation_wins(self):
        assert supersedes(MemberState.ALIVE, 2, MemberState.DEAD, 1)

    def test_lower_incarnation_loses(self):
        assert not supersedes(MemberState.DEAD, 1, MemberState.ALIVE, 2)

    def test_equal_incarnation_dead_beats_suspect_beats_alive(self):
        assert supersedes(MemberState.SUSPECT, 1, MemberState.ALIVE, 1)
        assert supersedes(MemberState.DEAD, 1, MemberState.SUSPECT, 1)
        assert supersedes(MemberState.LEFT, 1, MemberState.ALIVE, 1)
        assert not supersedes(MemberState.ALIVE, 1, MemberState.SUSPECT, 1)

    def test_identical_update_does_not_supersede(self):
        assert not supersedes(MemberState.ALIVE, 1, MemberState.ALIVE, 1)

    @given(states, incarnations, states, incarnations)
    def test_antisymmetric(self, s1, i1, s2, i2):
        """Two different records can't both supersede each other."""
        assert not (supersedes(s1, i1, s2, i2) and supersedes(s2, i2, s1, i1))

    @given(states, incarnations, states, incarnations, states, incarnations)
    def test_transitive(self, s1, i1, s2, i2, s3, i3):
        if supersedes(s1, i1, s2, i2) and supersedes(s2, i2, s3, i3):
            assert supersedes(s1, i1, s3, i3)


class TestWireRoundtrip:
    @given(states, incarnations)
    def test_roundtrip(self, state, inc):
        original = member(state=state, inc=inc)
        restored = Member.from_wire(original.to_wire(), time=1.0)
        assert restored.name == original.name
        assert restored.address == original.address
        assert restored.state == original.state
        assert restored.incarnation == original.incarnation

    def test_wire_size_close_to_estimate(self):
        import json

        m = member()
        actual = len(json.dumps(m.to_wire()))
        assert abs(m.wire_size() - actual) < 20

    def test_state_lookup_tables(self):
        for state in MemberState:
            assert STATE_BY_VALUE[state.value] is state
            assert state.value in RANK_BY_VALUE


class TestMemberList:
    def test_apply_new_member(self):
        ml = MemberList("self")
        assert ml.apply(member("a"))
        assert "a" in ml
        assert len(ml) == 1

    def test_apply_stale_update_rejected(self):
        ml = MemberList("self")
        ml.apply(member("a", MemberState.DEAD, inc=2))
        assert not ml.apply(member("a", MemberState.ALIVE, inc=1))
        assert ml.get("a").state == MemberState.DEAD

    def test_alive_excludes_dead(self):
        ml = MemberList("self")
        ml.apply(member("a"))
        ml.apply(member("b", MemberState.DEAD))
        assert ml.alive_names() == ["a"]

    def test_alive_exclude_self(self):
        ml = MemberList("a")
        ml.apply(member("a"))
        ml.apply(member("b"))
        assert ml.alive_names(exclude_self=True) == ["b"]

    def test_remove(self):
        ml = MemberList("self")
        ml.apply(member("a"))
        ml.remove("a")
        assert "a" not in ml
        assert ml.alive_count == 0

    def test_snapshot_size_tracks_members(self):
        ml = MemberList("self")
        empty = ml.snapshot_size()
        ml.apply(member("a"))
        assert ml.snapshot_size() > empty

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c", "d"]), states, incarnations),
            max_size=40,
        )
    )
    def test_alive_count_invariant(self, updates):
        """The incremental alive counter always equals the recount."""
        ml = MemberList("self")
        for name, state, inc in updates:
            ml.apply(Member(name, f"{name}/addr", "r", incarnation=inc, state=state))
            assert ml.alive_count == len(ml.alive())

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b"]), states, incarnations),
            max_size=30,
        )
    )
    def test_convergent_regardless_of_order(self, updates):
        """Applying the same updates in any order converges to the same view."""
        forward = MemberList("self")
        backward = MemberList("self")
        for name, state, inc in updates:
            forward.apply(Member(name, f"{name}/a", "r", incarnation=inc, state=state))
        for name, state, inc in reversed(updates):
            backward.apply(Member(name, f"{name}/a", "r", incarnation=inc, state=state))
        for name in ("a", "b"):
            f, b = forward.get(name), backward.get(name)
            if f is None or b is None:
                assert f is b is None
                continue
            # Same incarnation frontier; state agrees at the frontier rank.
            assert f.incarnation == b.incarnation
            assert RANK_BY_VALUE[f.state.value] == RANK_BY_VALUE[b.state.value]
