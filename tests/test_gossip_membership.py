"""Property and equivalence tests for the vectorized membership table.

Two layers of pinning:

* Hypothesis drives :class:`MembershipTable` and the dict-based
  :class:`MemberList` reference through identical random
  join/suspect/refute/fault/leave/reclaim sequences and asserts every
  observable — record contents, insertion order, alive views, snapshots,
  suspicion deadlines, ``apply`` return values, RNG selection draws — stays
  identical at every step.
* A seeded full-protocol SWIM run (join storm, failure, suspicion, refute
  window, anti-entropy, Serf query) must produce byte-identical summaries
  under every combination of membership backend x probe scheduling,
  pinning event order exactly like the PR 2 scheduler-equivalence gate.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gossip.agent import SerfAgent, SerfConfig
from repro.gossip.member import Member, MemberList, MemberState
from repro.gossip.membership import MembershipTable, NodeDirectory
from repro.gossip.probe import RegionProbeBatcher
from repro.sim import Network, Simulator, Topology

NAMES = [f"m{i}" for i in range(8)]
REGIONS = ["region-a", "region-b", "region-c"]
SELF = NAMES[0]

states = st.sampled_from(list(MemberState))
names = st.sampled_from(NAMES)
incarnations = st.integers(min_value=0, max_value=6)


def make_member(name: str, state: MemberState, inc: int, t: float) -> Member:
    i = NAMES.index(name)
    return Member(
        name,
        f"{name}/addr",
        REGIONS[i % len(REGIONS)],
        incarnation=inc,
        state=state,
        state_time=t,
    )


operations = st.lists(
    st.one_of(
        st.tuples(st.just("apply"), names, states, incarnations),
        st.tuples(st.just("upsert"), names, states, incarnations),
        st.tuples(st.just("remove"), names),
        st.tuples(st.just("deadline"), names, st.floats(0.0, 50.0)),
        st.tuples(st.just("expire"), st.floats(0.0, 60.0)),
    ),
    min_size=1,
    max_size=60,
)


def observe(backend, now: float):
    return {
        "len": len(backend),
        "alive_count": backend.alive_count,
        "records": [
            (m.name, m.address, m.region, m.incarnation, m.state.value, m.state_time)
            for m in backend
        ],
        "alive": [(m.name, m.address) for m in backend.alive()],
        "alive_ex": [(m.name, m.address) for m in backend.alive(exclude_self=True)],
        "names": backend.alive_names(),
        "names_ex": backend.alive_names(exclude_self=True),
        "suspects": [m.name for m in backend.suspects()],
        "snapshot": backend.snapshot_wire(),
        "snapshot_size": backend.snapshot_size(),
        "peek": [backend.peek(n) for n in NAMES],
        "due": backend.due_suspects(now),
    }


def run_ops(backend, ops):
    """Apply an op sequence; returns the per-step observable trace."""
    trace = []
    for step, op in enumerate(ops):
        t = float(step)
        if op[0] == "apply":
            _, name, state, inc = op
            trace.append(("apply", backend.apply(make_member(name, state, inc, t))))
        elif op[0] == "upsert":
            _, name, state, inc = op
            backend.upsert(make_member(name, state, inc, t))
        elif op[0] == "remove":
            backend.remove(op[1])
        elif op[0] == "deadline":
            backend.set_suspicion_deadline(op[1], op[2])
        else:
            trace.append(("expired", backend.expire_dead(op[1])))
        trace.append(observe(backend, now=t))
    return trace


class TestTableMatchesReference:
    @given(operations)
    @settings(max_examples=150)
    def test_random_sequences_match_dict_reference(self, ops):
        reference = MemberList(SELF)
        table = MembershipTable(SELF)
        assert run_ops(reference, ops) == run_ops(table, ops)

    @given(operations, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=100)
    def test_selection_draws_identical(self, ops, seed):
        reference = MemberList(SELF)
        table = MembershipTable(SELF)
        run_ops(reference, ops)
        run_ops(table, ops)
        for fanout in (1, 3, 8):
            assert reference.gossip_targets(
                random.Random(seed), fanout
            ) == table.gossip_targets(random.Random(seed), fanout)
        assert reference.sync_peer(random.Random(seed)) == table.sync_peer(
            random.Random(seed)
        )
        for exclude in NAMES:
            assert reference.relay_sample(
                random.Random(seed), 3, exclude
            ) == table.relay_sample(random.Random(seed), 3, exclude)

    @given(operations)
    @settings(max_examples=100)
    def test_shared_directory_matches_private(self, ops):
        directory = NodeDirectory()
        shared = MembershipTable(SELF, directory)
        private = MembershipTable(SELF)
        assert run_ops(shared, ops) == run_ops(private, ops)

    def test_removal_reinsertion_moves_to_end_like_dict(self):
        reference = MemberList(SELF)
        table = MembershipTable(SELF)
        for backend in (reference, table):
            for name in NAMES[:4]:
                backend.upsert(make_member(name, MemberState.ALIVE, 0, 0.0))
            backend.remove(NAMES[1])
            backend.upsert(make_member(NAMES[1], MemberState.ALIVE, 1, 1.0))
        assert [m.name for m in reference] == [m.name for m in table]
        assert [m.name for m in table] == [NAMES[0], NAMES[2], NAMES[3], NAMES[1]]


class TestFilterSuperseding:
    wire_updates = st.lists(
        st.tuples(
            st.sampled_from([f"m{i}" for i in range(24)]),
            states,
            incarnations,
        ),
        min_size=16,
        max_size=24,
        unique_by=lambda u: u[0],
    )

    @given(operations, wire_updates)
    @settings(max_examples=100)
    def test_filtered_batch_reaches_same_state(self, ops, updates):
        full = MembershipTable(SELF)
        filtered = MembershipTable(SELF)
        run_ops(full, ops)
        run_ops(filtered, ops)
        batch = [
            {
                "n": name,
                "a": f"{name}/addr",
                "r": REGIONS[0],
                "i": inc,
                "s": state.value,
            }
            for name, state, inc in updates
        ]
        def agent_loop_apply(table, wire):
            # Mirror SwimAgent._apply_updates for one membership wire: drop
            # death notices about unknown members, route self updates to
            # refutation handling (not apply), else apply.
            previous = table.peek(wire["n"])
            if previous is None and wire["s"] in ("dead", "left"):
                return "dropped"
            if wire["n"] == table.self_name:
                return "self"
            return table.apply(Member.from_wire(wire, 99.0))

        kept = filtered.filter_superseding(batch)
        kept_ids = {id(w) for w in kept}
        for wire in batch:
            outcome = agent_loop_apply(full, wire)
            if outcome is True or outcome == "self":
                # The prefilter may only drop updates the agent loop would
                # reject; self updates must always survive (refutation).
                assert id(wire) in kept_ids
        for wire in kept:
            agent_loop_apply(filtered, wire)
        assert observe(full, 99.0) == observe(filtered, 99.0)

    def test_small_batches_and_custom_payloads_pass_through(self):
        table = MembershipTable(SELF)
        small = [{"n": "x", "i": 0, "s": "alive"}] * 3
        assert table.filter_superseding(small) is small
        mixed = [{"t": "q", "id": f"q{i}"} for i in range(20)]
        assert table.filter_superseding(mixed) is mixed

    def test_updates_about_self_are_always_kept(self):
        table = MembershipTable(SELF)
        table.upsert(make_member(SELF, MemberState.ALIVE, 5, 0.0))
        batch = [
            {"n": n, "a": f"{n}/addr", "r": REGIONS[0], "i": 0, "s": "alive"}
            for n in (SELF, *(f"pad{i}" for i in range(16)))
        ]
        kept = table.filter_superseding(batch)
        # Stale by incarnation, but self-updates drive refutation: kept.
        assert batch[0] in kept


class TestDirectoryAndRegions:
    def test_interned_wires_are_shared_across_tables(self):
        directory = NodeDirectory()
        a = MembershipTable("a", directory)
        b = MembershipTable("b", directory)
        member = make_member(NAMES[1], MemberState.ALIVE, 2, 0.0)
        a.upsert(member)
        b.upsert(member)
        (wire_a,) = (w for w in a.snapshot_wire() if w["n"] == NAMES[1])
        (wire_b,) = (w for w in b.snapshot_wire() if w["n"] == NAMES[1])
        assert wire_a is wire_b
        assert wire_a == member.to_wire()

    def test_wire_cache_invalidated_on_address_change(self):
        directory = NodeDirectory()
        table = MembershipTable("a", directory)
        table.upsert(make_member(NAMES[1], MemberState.ALIVE, 0, 0.0))
        first = table.snapshot_wire()[0]
        moved = Member(NAMES[1], "new/addr", REGIONS[1], incarnation=0)
        table.upsert(moved)
        assert table.snapshot_wire()[0] == moved.to_wire()

    def test_region_views(self):
        table = MembershipTable(SELF)
        for name in NAMES:
            table.upsert(make_member(name, MemberState.ALIVE, 0, 0.0))
        table.apply(make_member(NAMES[3], MemberState.DEAD, 1, 1.0))
        counts = table.region_alive_counts()
        by_region = {}
        for m in table.alive():
            by_region[m.region] = by_region.get(m.region, 0) + 1
        assert counts == by_region
        mask = table.region_mask(REGIONS[0])
        expected = {m.name for m in table if m.region == REGIONS[0]}
        got = {
            table.directory.names[slot]
            for slot in range(len(table.directory))
            if mask[slot]
        }
        assert got == expected
        assert not table.region_mask("nowhere").any()


def swim_equivalence_summary(membership: str, batched: bool, seed: int = 7) -> str:
    """Full-protocol seeded run: join storm, crash, suspicion, Serf query."""
    sim = Simulator(seed=seed)
    topology = Topology()
    network = Network(sim, topology)
    regions = [r.name for r in topology.regions]
    config = SerfConfig(sync_interval=5.0)
    directory = NodeDirectory() if membership == "table" else None
    batcher = RegionProbeBatcher(sim, config.probe_interval) if batched else None
    agents = []
    answers = []
    for i in range(8):
        agent = SerfAgent(
            sim,
            network,
            f"n{i}",
            f"addr{i}",
            regions[i % len(regions)],
            config,
            membership=membership,
            directory=directory,
            probe_batcher=batcher,
        )
        agent.on_query("who", lambda payload, origin, a=agent: a.name)
        agent.start()
        agents.append(agent)
    for agent in agents[1:]:
        agent.join(["addr0"])
    sim.run_until(8.0)
    agents[3].stop()  # crash: exercises probe timeout -> suspect -> dead
    sim.schedule_at(
        12.0, lambda: agents[1].query("who", None, lambda r: answers.append(sorted(r)))
    )
    sim.run_until(20.0)
    summary = {
        "events_processed": sim.events_processed,
        "answers": answers,
        "counters": {
            name: network.metrics.counter(name).value
            for name in network.metrics.names()["counters"]
        },
        "meters": {
            f"addr{i}": network.meter(f"addr{i}").total_bytes for i in range(8)
        },
        "alive_views": sorted(
            (agent.name, sorted(m.name for m in agent.alive_members()))
            for agent in agents
            if agent.running
        ),
    }
    return json.dumps(summary, sort_keys=True)


class TestSeededSwimEquivalence:
    """The tentpole acceptance gate: backends cannot perturb event order."""

    ARMS = [
        ("dict", False),
        ("dict", True),
        ("table", False),
        ("table", True),
    ]
    ARM_IDS = [f"{m}-{'batched' if b else 'timers'}" for m, b in ARMS]

    @pytest.mark.parametrize(("membership", "batched"), ARMS[1:], ids=ARM_IDS[1:])
    def test_bit_identical_to_dict_reference(self, membership, batched):
        reference = swim_equivalence_summary("dict", False)
        assert swim_equivalence_summary(membership, batched) == reference

    def test_failure_is_detected_in_reference_run(self):
        summary = json.loads(swim_equivalence_summary("dict", False))
        # The run must actually exercise the suspicion machinery: the
        # crashed agent disappears from every surviving view.
        for _, view in summary["alive_views"]:
            assert "n3" not in view
        assert summary["answers"], "query must complete"


class TestRegionProbeBatcher:
    def test_register_requires_matching_interval(self):
        sim = Simulator(seed=0)
        topology = Topology()
        network = Network(sim, topology)
        batcher = RegionProbeBatcher(sim, 2.0)
        agent = SerfAgent(
            sim, network, "n0", "a0", topology.regions[0].name,
            probe_batcher=batcher,
        )
        with pytest.raises(ValueError):
            agent.start()

    def test_one_sentinel_per_region(self):
        sim = Simulator(seed=0)
        batcher = RegionProbeBatcher(sim, 1.0)
        fired = []
        for i in range(40):
            batcher.register(
                f"region-{i % 4}",
                lambda i=i: fired.append(i),
                jitter=0.1,
                rng=sim.derive_rng(f"t{i}"),
            )
        assert batcher.region_count() == 4
        assert batcher.pending_counts() == {f"region-{r}": 10 for r in range(4)}
        # 40 timers, but only one live sentinel per region (the queue may
        # also hold cancelled tombstones from retargeting, reclaimed lazily).
        assert sum(cls.scheduled for cls in batcher._classes.values()) == 4
        sim.run_until(1.2)
        assert sorted(fired) == list(range(40))

    def test_stop_deactivates_and_retargets(self):
        sim = Simulator(seed=0)
        batcher = RegionProbeBatcher(sim, 1.0)
        fired = []
        timers = [
            batcher.register("r", lambda i=i: fired.append(i), rng=sim.derive_rng(f"t{i}"))
            for i in range(3)
        ]
        timers[0].stop()
        assert timers[0].stopped
        sim.run_until(1.0)
        assert sorted(fired) == [1, 2]
        assert batcher.pending_counts() == {"r": 2}

    def test_matches_per_timer_firing_times(self):
        fire_times = {}
        for batched in (False, True):
            sim = Simulator(seed=3)
            fired = []
            if batched:
                batcher = RegionProbeBatcher(sim, 0.5)
                for i in range(10):
                    batcher.register(
                        "r",
                        lambda i=i: fired.append((round(sim.now, 9), i)),
                        jitter=0.05,
                        rng=sim.derive_rng(f"timer/{i}"),
                    )
            else:
                for i in range(10):
                    sim.call_every(
                        0.5,
                        lambda i=i: fired.append((round(sim.now, 9), i)),
                        jitter=0.05,
                        rng=sim.derive_rng(f"timer/{i}"),
                    )
            sim.run_until(10.0)
            fire_times[batched] = fired
        assert fire_times[False] == fire_times[True] != []
