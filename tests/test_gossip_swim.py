"""Integration tests for the SWIM protocol."""


from repro.gossip import SwimAgent, SwimConfig
from repro.gossip.member import MemberState


def build_group(sim, network, count, regions, config=None):
    agents = []
    for i in range(count):
        agent = SwimAgent(
            sim, network, f"n{i}", f"n{i}/swim", regions[i % len(regions)],
            config or SwimConfig(),
        )
        agent.start()
        agents.append(agent)
    for agent in agents[1:]:
        agent.join([agents[0].address])
    return agents


class TestJoinAndConvergence:
    def test_all_members_converge(self, sim, network, regions):
        agents = build_group(sim, network, 12, regions)
        sim.run_until(5.0)
        assert all(a.group_size() == 12 for a in agents)

    def test_staggered_joins_converge(self, sim, network, regions):
        agents = []
        for i in range(8):
            agent = SwimAgent(sim, network, f"n{i}", f"n{i}/swim", regions[0])
            agents.append(agent)
            sim.schedule(i * 0.5, agent.start)
            if i:
                sim.schedule(i * 0.5 + 0.01, agent.join, [agents[0].address])
        sim.run_until(10.0)
        assert all(a.group_size() == 8 for a in agents)

    def test_join_via_multiple_entry_points(self, sim, network, regions):
        agents = build_group(sim, network, 4, regions)
        sim.run_until(3.0)
        late = SwimAgent(sim, network, "late", "late/swim", regions[0])
        late.start()
        late.join([agents[1].address, agents[2].address])
        sim.run_until(6.0)
        assert late.group_size() == 5

    def test_membership_includes_self(self, sim, network, regions):
        agent = SwimAgent(sim, network, "solo", "solo/swim", regions[0])
        agent.start()
        sim.run_until(1.0)
        assert agent.group_size() == 1
        assert agent.members.get("solo").state == MemberState.ALIVE


class TestFailureDetection:
    def test_crashed_member_declared_dead(self, sim, network, regions):
        agents = build_group(sim, network, 8, regions)
        sim.run_until(5.0)
        victim = agents[3]
        victim.stop()
        sim.run_until(30.0)
        for agent in agents:
            if agent is victim:
                continue
            record = agent.members.get("n3")
            assert record is not None
            assert record.state in (MemberState.DEAD, MemberState.SUSPECT)
            assert record.state == MemberState.DEAD

    def test_dead_member_reclaimed_after_timeout(self, sim, network, regions):
        config = SwimConfig(dead_reclaim_time=10.0, sync_interval=5.0)
        agents = build_group(sim, network, 4, regions, config)
        sim.run_until(3.0)
        agents[2].stop()
        sim.run_until(60.0)
        assert "n2" not in agents[0].members

    def test_callbacks_fire(self, sim, network, regions):
        agents = build_group(sim, network, 5, regions)
        dead_seen = []
        agents[0].on_member_dead.append(lambda m: dead_seen.append(m.name))
        sim.run_until(3.0)
        agents[4].stop()
        sim.run_until(30.0)
        assert "n4" in dead_seen

    def test_temporarily_blocked_member_refutes_suspicion(self, sim, network, regions):
        """A member cut off from one peer is saved by indirect probing or
        refutes any suspicion with a higher incarnation."""
        agents = build_group(sim, network, 6, regions)
        sim.run_until(5.0)
        network.block(agents[0].address, agents[1].address)
        sim.run_until(20.0)
        network.unblock(agents[0].address, agents[1].address)
        sim.run_until(40.0)
        # n1 must still be alive in everyone's view.
        for agent in agents:
            if agent.running:
                record = agent.members.get("n1")
                assert record is not None and record.state == MemberState.ALIVE


class TestLeave:
    def test_graceful_leave_propagates(self, sim, network, regions):
        agents = build_group(sim, network, 6, regions)
        sim.run_until(5.0)
        agents[2].leave()
        sim.run_until(15.0)
        for agent in agents:
            if not agent.running:
                continue
            record = agent.members.get("n2")
            assert record is None or record.state in (MemberState.LEFT, MemberState.DEAD)

    def test_leave_stops_agent(self, sim, network, regions):
        agents = build_group(sim, network, 3, regions)
        sim.run_until(2.0)
        agents[1].leave()
        sim.run_until(5.0)
        assert not agents[1].running


class TestAntiEntropy:
    def test_isolated_views_merge_via_sync(self, sim, network, regions):
        """Two halves that each converged separately merge after a join."""
        config = SwimConfig(sync_interval=5.0)
        left = build_group(sim, network, 3, regions, config)
        right = []
        for i in range(3, 6):
            agent = SwimAgent(sim, network, f"n{i}", f"n{i}/swim", regions[0], config)
            agent.start()
            right.append(agent)
        for agent in right[1:]:
            agent.join([right[0].address])
        sim.run_until(5.0)
        assert left[0].group_size() == 3
        assert right[0].group_size() == 3
        right[0].join([left[0].address])
        sim.run_until(30.0)
        assert all(a.group_size() == 6 for a in left + right)


class TestIncarnation:
    def test_refutation_bumps_incarnation(self, sim, network, regions):
        agents = build_group(sim, network, 4, regions)
        sim.run_until(3.0)
        target = agents[1]
        # Inject a false suspicion about n1 into n0 and let it gossip.
        from repro.gossip.member import Member

        slander = Member("n1", target.address, target.region,
                         incarnation=target.incarnation, state=MemberState.SUSPECT)
        agents[0].members.apply(slander)
        agents[0]._broadcast_member(slander)
        sim.run_until(20.0)
        assert target.incarnation > 0
        for agent in agents:
            assert agent.members.get("n1").state == MemberState.ALIVE
