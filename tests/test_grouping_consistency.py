"""Property: naming, grouping and routing always agree.

These pure-function properties underpin FOCUS's correctness: the group a
node is *suggested into* must contain its value, and the groups a query is
*routed to* must include every group holding matching values — for any
values and any cutoffs.
"""

from hypothesis import given, strategies as st

from repro.core.groups import GroupTable
from repro.core.naming import group_base, group_name, group_range

cutoffs = st.sampled_from([0.5, 1.0, 2.0, 5.0, 25.0, 2048.0])
values = st.floats(min_value=0.0, max_value=1e4)


class TestSuggestRouteAgreement:
    @given(values, cutoffs)
    def test_suggested_group_contains_value(self, value, cutoff):
        table = GroupTable()
        family = table.family_for_value("attr", value, cutoff)
        group = family.open_instance_for("r", max_size=100, time=0.0)
        assert group.contains_value(value) or value == group.range[1]

    @given(values, values, values, cutoffs)
    def test_routing_covers_every_matching_group(self, a, b, node_value, cutoff):
        """Register a node's group; any query interval containing the
        node's value must route to that group."""
        lower, upper = min(a, b), max(a, b)
        if not (lower <= node_value <= upper):
            return
        table = GroupTable()
        family = table.family_for_value("attr", node_value, cutoff)
        group = family.open_instance_for("r", max_size=100, time=0.0)
        table.index(group)
        covering = table.instances_covering("attr", lower, upper)
        assert group in covering

    @given(values, cutoffs)
    def test_point_query_routes_to_exactly_the_value_group(self, value, cutoff):
        table = GroupTable()
        for base_offset in (-2, -1, 0, 1, 2):
            base = group_base(value, cutoff) + base_offset * cutoff
            if base < 0:
                continue
            family = table.family("attr", base, cutoff)
            table.index(family.open_instance_for("r", 100, 0.0))
        covering = table.instances_covering("attr", value, value)
        names = {g.name for g in covering}
        assert group_name("attr", value, cutoff) in names
        # A point can touch at most two adjacent ranges (on a boundary).
        assert len(names) <= 2

    @given(values, cutoffs)
    def test_adjacent_ranges_tile_without_gaps(self, value, cutoff):
        base = group_base(value, cutoff)
        low, high = group_range(base, cutoff)
        next_low, _ = group_range(base + cutoff, cutoff)
        assert high == next_low  # no gap, no overlap
