"""Tests for the harness: scenario builders, runners, report formatting."""

import pytest

from repro.core.query import Query, QueryTerm
from repro.errors import SimulationError
from repro.harness import (
    build_focus_cluster,
    drain,
    format_table,
    run_queries,
    run_query,
)
from repro.harness.scenarios import build_single_group_cluster
from repro.workloads import node_spec_factory


class TestWarmStart:
    def test_warm_start_equivalent_to_protocol_bring_up(self):
        """Warm start must land in the same structural state a protocol
        bring-up converges to: same groups, same members."""
        factory = node_spec_factory(seed=9)
        warm = build_focus_cluster(
            24, seed=9, warm_start=True, with_store=False, node_factory=factory
        )
        drain(warm, 1.0)
        cold = build_focus_cluster(
            24, seed=9, warm_start=False, with_store=False, node_factory=factory
        )
        drain(cold, 20.0)

        def group_map(scenario):
            return {
                g.name: set(g.all_node_ids())
                for g in scenario.service.dgm.groups.all_groups()
                if g.size_estimate() > 0
            }

        assert group_map(warm) == group_map(cold)

    def test_warm_start_serf_views_populated(self):
        scenario = build_focus_cluster(16, seed=10, warm_start=True, with_store=False)
        for agent in scenario.agents:
            for membership in agent.memberships.values():
                group = scenario.service.dgm.groups.get(membership.group)
                assert membership.serf.group_size() == group.size_estimate()

    def test_warm_start_answers_queries_immediately(self):
        scenario = build_focus_cluster(16, seed=11, warm_start=True, with_store=False)
        response = run_query(
            scenario, Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=0.0)
        )
        assert len(response.matches) == 16


class TestSingleGroupBuilder:
    def test_all_nodes_in_one_group(self):
        scenario = build_single_group_cluster(30, seed=12)
        groups = [
            g for g in scenario.service.dgm.groups.all_groups()
            if g.size_estimate() > 0
        ]
        assert len(groups) == 1
        assert groups[0].size_estimate() == 30

    def test_group_never_forks(self):
        scenario = build_single_group_cluster(30, seed=13)
        drain(scenario, 20.0)
        groups = [
            g for g in scenario.service.dgm.groups.all_groups()
            if g.size_estimate() > 0
        ]
        assert len(groups) == 1


class TestRunners:
    def test_run_query_raises_without_response(self):
        scenario = build_focus_cluster(4, seed=14, warm_start=True, with_store=False)
        scenario.service.stop()  # nobody will answer
        with pytest.raises(SimulationError):
            run_query(
                scenario,
                Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=0.0),
                max_wait=2.0,
            )

    def test_run_queries_rate(self):
        scenario = build_focus_cluster(8, seed=15, warm_start=True, with_store=False)
        queries = [
            Query([QueryTerm.at_least("ram_mb", 0.0)], limit=2, freshness_ms=0.0)
            for _ in range(5)
        ]
        start = scenario.sim.now
        responses = run_queries(scenario, queries, rate=2.0)
        assert len(responses) == 5
        # 5 queries at 2/s -> 2.5 s of arrivals plus the settle window.
        assert scenario.sim.now == pytest.approx(start + 2.5 + 5.0)

    def test_reset_bandwidth(self):
        scenario = build_focus_cluster(8, seed=16, warm_start=True, with_store=False)
        drain(scenario, 10.0)
        assert scenario.server_bandwidth_bytes() > 0
        scenario.reset_bandwidth()
        assert scenario.server_bandwidth_bytes() == 0

    def test_agent_lookup(self):
        scenario = build_focus_cluster(4, seed=17, warm_start=True, with_store=False)
        assert scenario.agent(scenario.agents[2].node_id) is scenario.agents[2]
        with pytest.raises(KeyError):
            scenario.agent("nope")


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1.5), ("long-name", 20000.0)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        assert "20,000" in lines[3]

    def test_format_table_small_floats(self):
        text = format_table(["v"], [(0.1234567,)])
        assert "0.1235" in text

    def test_format_table_zero(self):
        assert "0" in format_table(["v"], [(0.0,)])


class TestDeterminism:
    def test_identical_builds_identical_traces(self):
        def fingerprint():
            scenario = build_focus_cluster(16, seed=18, with_store=False)
            drain(scenario, 15.0)
            run_query(
                scenario,
                Query([QueryTerm.at_least("ram_mb", 1000.0)], freshness_ms=0.0),
            )
            return (
                scenario.sim.events_processed,
                scenario.network.metrics.counter("messages_sent").value,
                scenario.server_bandwidth_bytes(),
            )

        assert fingerprint() == fingerprint()
