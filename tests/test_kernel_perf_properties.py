"""Property tests pinning the optimized kernel hot paths to naive reference
implementations, plus a determinism test over a seeded gossip run.

The perf pass replaced linear scans (``BandwidthMeter.bytes_in_window``,
``TimeSeries.window``/``mean_over``) with bisect + prefix sums and added a
bucketed streaming percentile mode; these tests assert the fast paths agree
with the obviously-correct O(n) versions on random inputs, and that a
fixed-seed simulation still produces byte-identical metric summaries run to
run.
"""

import json
import math

import pytest
from hypothesis import given, strategies as st

from repro.gossip.swim import SwimAgent, SwimConfig
from repro.sim import Network, Simulator, Topology
from repro.sim.metrics import BandwidthMeter, Histogram, TimeSeries

times = st.floats(min_value=0, max_value=1e6, allow_nan=False)
sizes = st.integers(min_value=0, max_value=10**6)
events = st.lists(st.tuples(times, sizes), max_size=200)
windows = st.tuples(times, times)


def naive_bytes_in_window(event_list, start, end):
    return sum(size for t, size in event_list if start <= t <= end)


class TestBandwidthMeterAgainstNaive:
    @given(sent=events, received=events, window=windows)
    def test_bytes_in_window_matches_scan(self, sent, received, window):
        start, end = min(window), max(window)
        meter = BandwidthMeter("m")
        for t, size in sent:
            meter.on_send(t, size)
        for t, size in received:
            meter.on_receive(t, size)
        expected = naive_bytes_in_window(sent, start, end) + naive_bytes_in_window(
            received, start, end
        )
        assert meter.bytes_in_window(start, end) == expected

    @given(sent=events, window=windows)
    def test_queries_interleaved_with_appends(self, sent, window):
        start, end = min(window), max(window)
        meter = BandwidthMeter("m")
        for t, size in sent:
            meter.on_send(t, size)
            # Query after every append so the prefix cache is repeatedly
            # extended and (on out-of-order input) rebuilt.
            meter.bytes_in_window(start, end)
        expected = naive_bytes_in_window(sent, start, end)
        assert meter.bytes_in_window(start, end) == expected


class TestTimeSeriesAgainstNaive:
    samples = st.lists(st.tuples(times, st.floats(-1e6, 1e6)), max_size=200)

    @given(samples=samples, window=windows)
    def test_window_matches_scan(self, samples, window):
        start, end = min(window), max(window)
        ts = TimeSeries("t")
        for t, v in samples:
            ts.record(t, v)
        expected = sorted(
            [(t, v) for t, v in samples if start <= t <= end],
            key=lambda sample: sample[0],
        )
        got = ts.window(start, end)
        assert sorted(got, key=lambda sample: sample[0]) == expected
        assert got == sorted(got, key=lambda sample: sample[0])

    @given(samples=samples, window=windows)
    def test_mean_over_matches_scan(self, samples, window):
        start, end = min(window), max(window)
        ts = TimeSeries("t")
        for t, v in samples:
            ts.record(t, v)
        in_window = [v for t, v in samples if start <= t <= end]
        if not in_window:
            assert math.isnan(ts.mean_over(start, end))
        else:
            assert ts.mean_over(start, end) == pytest.approx(
                sum(in_window) / len(in_window)
            )


class TestStreamingPercentileAgainstExact:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        p=st.floats(min_value=0, max_value=100),
    )
    def test_within_bucket_relative_error(self, values, p):
        h = Histogram("h", streaming=True)
        for v in values:
            h.observe(v)
        ordered = sorted(values)
        if p == 0:
            assert h.percentile(p) == ordered[0]
            return
        if p == 100:
            assert h.percentile(p) == ordered[-1]
            return
        # The streaming value's bucket contains the exact nearest-rank
        # sample, so the error is bounded by the bucket width (~1% relative)
        # plus the sub-1e-9 magnitudes collapsed into the zero bucket.
        k = max(1, math.ceil((p / 100) * len(ordered)))
        exact = ordered[k - 1]
        assert h.percentile(p) == pytest.approx(exact, rel=0.02, abs=1e-8)


def run_seeded_gossip(seed: int = 7) -> str:
    """A fixed-seed SWIM run; returns a canonical JSON metrics summary."""
    sim = Simulator(seed=seed)
    topology = Topology()
    network = Network(sim, topology)
    regions = [r.name for r in topology.regions]
    agents = []
    for i in range(8):
        agent = SwimAgent(
            sim,
            network,
            f"n{i}",
            f"addr{i}",
            regions[i % len(regions)],
            SwimConfig(sync_interval=5.0),
        )
        agent.start()
        agents.append(agent)
    for agent in agents[1:]:
        agent.join(["addr0"])
    sim.run_until(8.0)
    agents[3].stop()  # in-flight messages to it exercise the dead-endpoint path
    sim.run_until(20.0)

    summary = {
        "events_processed": sim.events_processed,
        "counters": {
            name: network.metrics.counter(name).value
            for name in network.metrics.names()["counters"]
        },
        "meters": {
            f"addr{i}": [
                network.meter(f"addr{i}").total_bytes,
                network.meter(f"addr{i}").bytes_in_window(0.0, 10.0),
                network.meter(f"addr{i}").bytes_in_window(5.0, 20.0),
            ]
            for i in range(8)
        },
        "alive_views": sorted(
            (agent.name, sorted(m.name for m in agent.alive_members()))
            for agent in agents
            if agent.running
        ),
    }
    return json.dumps(summary, sort_keys=True)


class TestSeededDeterminism:
    def test_same_seed_byte_identical_summaries(self):
        assert run_seeded_gossip(7) == run_seeded_gossip(7)

    def test_different_seed_differs(self):
        assert run_seeded_gossip(7) != run_seeded_gossip(8)

    def test_optimized_windows_match_naive_on_real_run(self):
        sim = Simulator(seed=11)
        topology = Topology()
        network = Network(sim, topology)
        regions = [r.name for r in topology.regions]
        agents = []
        for i in range(6):
            agent = SwimAgent(
                sim, network, f"n{i}", f"addr{i}", regions[i % len(regions)]
            )
            agent.start()
            agents.append(agent)
        for agent in agents[1:]:
            agent.join(["addr0"])
        sim.run_until(10.0)
        for i in range(6):
            meter = network.meter(f"addr{i}")
            for start, end in ((0.0, 10.0), (2.5, 7.5), (9.0, 9.5)):
                expected = naive_bytes_in_window(
                    meter.sent_events(), start, end
                ) + naive_bytes_in_window(meter.received_events(), start, end)
                assert meter.bytes_in_window(start, end) == expected
