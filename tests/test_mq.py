"""Tests for the RabbitMQ-equivalent broker: routing, consumers, CPU model."""

import pytest

from repro.mq import Broker, BrokerConfig, Consumer, Producer


@pytest.fixture
def broker(sim, network, regions):
    b = Broker(sim, network, "broker", regions[0])
    b.start()
    return b


class TestRouting:
    def test_publish_to_consumer(self, sim, network, regions, broker):
        consumer = Consumer(sim, network, "c", regions[0], "broker", "q1")
        consumer.start()
        producer = Producer(sim, network, "p", regions[0], "broker", "q1", rate=2.0)
        producer.start()
        sim.run_until(5.0)
        assert consumer.consumed >= 8

    def test_no_consumer_drops_silently(self, sim, network, regions, broker):
        producer = Producer(sim, network, "p", regions[0], "broker", "empty-q")
        producer.start()
        sim.run_until(2.0)  # must not raise

    def test_competing_consumers_round_robin(self, sim, network, regions, broker):
        consumers = [
            Consumer(sim, network, f"c{i}", regions[0], "broker", "shared")
            for i in range(4)
        ]
        for c in consumers:
            c.start()
        producer = Producer(sim, network, "p", regions[0], "broker", "shared", rate=20.0)
        producer.start()
        sim.run_until(5.0)
        counts = [c.consumed for c in consumers]
        assert sum(counts) >= 90
        assert max(counts) - min(counts) <= 2  # balanced

    def test_fanout_exchange_reaches_all_queues(self, sim, network, regions, broker):
        consumers = []
        for i in range(3):
            c = Consumer(sim, network, f"c{i}", regions[0], "broker", f"q{i}")
            c.start()
            c.send("broker", "mq.bind", {"exchange": "x", "queue": f"q{i}"})
            consumers.append(c)
        sim.run_until(1.0)
        consumers[0].send(
            "broker",
            "mq.publish",
            {"exchange": "x", "body": {"n": 1}, "size": 100, "sent_at": sim.now},
        )
        sim.run_until(3.0)
        assert all(c.consumed == 1 for c in consumers)

    def test_latency_recorded(self, sim, network, regions, broker):
        consumer = Consumer(sim, network, "c", regions[0], "broker", "q")
        consumer.start()
        producer = Producer(sim, network, "p", regions[0], "broker", "q", rate=5.0)
        producer.start()
        sim.run_until(10.0)
        assert consumer.latency.count > 0
        assert 0 < consumer.latency.percentile(50) < 0.1


class TestCpuModel:
    def test_utilization_grows_with_producers(self, sim, network, regions):
        def utilization(num_producers):
            from repro.sim import Network, Simulator

            local_sim = Simulator(seed=1)
            local_net = Network(local_sim, record_bandwidth_events=False)
            region = local_net.topology.regions[0].name
            broker = Broker(local_sim, local_net, "b", region)
            broker.start()
            consumer = Consumer(local_sim, local_net, "c", region, "b", "q")
            consumer.start()
            for i in range(num_producers):
                Producer(local_sim, local_net, f"p{i}", region, "b", "q").start()
            local_sim.run_until(10.0)
            return broker.utilization_over(5.0, 10.0)

        low, high = utilization(20), utilization(200)
        assert high > low

    def test_saturation_builds_backlog(self, sim, network, regions):
        # Capacity is ~33k msgs/s with default config; a synthetic burst
        # far above it must queue.
        config = BrokerConfig(cores=1.0, per_message_cpu=0.001)  # 1k msgs/s
        broker = Broker(sim, network, "b2", regions[0], config)
        broker.start()
        consumer = Consumer(sim, network, "c", regions[0], "b2", "q")
        consumer.start()
        producers = [
            Producer(sim, network, f"p{i}", regions[0], "b2", "q", rate=50.0)
            for i in range(40)  # 2000 msgs/s offered to a 1k msgs/s broker
        ]
        for p in producers:
            p.start()
        sim.run_until(10.0)
        assert broker.backlog_seconds > 1.0
        assert consumer.latency.percentile(99) > 1.0

    def test_overload_protection_drops(self, sim, network, regions):
        config = BrokerConfig(cores=1.0, per_message_cpu=0.01, max_backlog_seconds=0.5)
        broker = Broker(sim, network, "b3", regions[0], config)
        broker.start()
        consumer = Consumer(sim, network, "c2", regions[0], "b3", "q")
        consumer.start()
        for i in range(20):
            Producer(sim, network, f"pp{i}", regions[0], "b3", "q", rate=50.0).start()
        sim.run_until(10.0)
        assert broker.messages_dropped > 0

    def test_utilization_over_requires_samples(self, sim, network, regions, broker):
        from repro.errors import BrokerError

        with pytest.raises(BrokerError):
            broker.utilization_over(100.0, 200.0)

    def test_connection_overhead_counted(self, sim, network, regions, broker):
        # Many idle connections alone should produce nonzero utilization.
        for i in range(500):
            broker.connections.add(f"conn-{i}")
        sim.run_until(3.0)
        assert broker.utilization_over(0.0, 3.0) > 0.02
