"""Broker fan-out cost accounting: a fanout publish is N deliveries of work."""


from repro.mq import Broker, BrokerConfig, Consumer
from repro.sim.network import approx_size


def bind_consumers(sim, network, region, broker, count):
    consumers = []
    for index in range(count):
        consumer = Consumer(sim, network, f"c{index}", region, broker.address,
                            f"q{index}")
        consumer.start()
        consumer.send(broker.address, "mq.bind",
                      {"exchange": "x", "queue": f"q{index}"})
        consumers.append(consumer)
    return consumers


def publish(sim, sender, broker, body):
    sender.send(
        broker.address,
        "mq.publish",
        {"exchange": "x", "body": body, "size": approx_size(body),
         "sent_at": sim.now},
    )


class TestFanoutCpu:
    def test_fanout_charges_per_delivery(self, sim, network, regions):
        """With a deliberately slow broker, one fanout publish to many
        queues builds measurable backlog, unlike a single-queue publish."""
        config = BrokerConfig(cores=1.0, per_message_cpu=0.01)  # 10 ms/delivery
        broker = Broker(sim, network, "broker", regions[0], config)
        broker.start()
        consumers = bind_consumers(sim, network, regions[0], broker, 50)
        sim.run_until(1.0)
        publish(sim, consumers[0], broker, {"n": 1})
        sim.run_until(1.1)
        # 50 deliveries x 10 ms = 0.5 s of work from one publish.
        assert broker.backlog_seconds > 0.3

    def test_all_bound_queues_receive(self, sim, network, regions):
        broker = Broker(sim, network, "broker", regions[0])
        broker.start()
        consumers = bind_consumers(sim, network, regions[0], broker, 20)
        sim.run_until(1.0)
        publish(sim, consumers[0], broker, {"n": 1})
        sim.run_until(3.0)
        assert all(c.consumed == 1 for c in consumers)

    def test_empty_exchange_costs_one_unit(self, sim, network, regions):
        config = BrokerConfig(cores=1.0, per_message_cpu=0.01)
        broker = Broker(sim, network, "broker", regions[0], config)
        broker.start()
        consumer = Consumer(sim, network, "lone", regions[0], "broker", "ql")
        consumer.start()
        sim.run_until(1.0)
        # Publish to an exchange with no bindings: routed, nothing delivered.
        consumer.send(
            broker.address,
            "mq.publish",
            {"exchange": "ghost", "body": {}, "size": 10, "sent_at": sim.now},
        )
        sim.run_until(1.05)
        assert broker.backlog_seconds < 0.02
        assert broker.messages_routed == 1


class TestConvergenceFootnote:
    def test_group_query_convergence_band(self, sim, network, regions):
        """Footnote 2 of the paper: with fanout 4 / 100 ms gossip, groups of
        a few hundred members converge a query in well under a second."""
        from repro.gossip import SerfAgent, SerfConfig
        from repro.gossip.member import Member, MemberState

        count = 100
        agents = []
        for i in range(count):
            agent = SerfAgent(sim, network, f"n{i}", f"n{i}/serf",
                              regions[i % len(regions)], SerfConfig())
            agent.start()
            agents.append(agent)
        # Warm-seed membership (converged cluster).
        for agent in agents:
            for other in agents:
                if other is not agent:
                    agent.members.upsert(
                        Member(other.name, other.address, other.region,
                               0, MemberState.ALIVE, 0.0)
                    )
        for agent in agents:
            agent.on_query("s", lambda p, o: {"ok": True})
        sim.run_until(1.0)
        done = {}
        start = sim.now
        agents[0].query("s", {}, lambda r: done.update(n=len(r), t=sim.now - start),
                        timeout=3.0)
        sim.run_until(6.0)
        assert done["n"] == count
        assert 0.1 < done["t"] < 1.0
