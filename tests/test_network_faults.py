"""Directed blocks, link degradation and heal_all on the Network."""

import pytest

from repro.errors import NetworkError
from repro.sim.process import Process


class Echo(Process):
    """Counts deliveries by kind."""

    def __init__(self, sim, network, address, region):
        super().__init__(sim, network, address, region)
        self.got = []
        self.on("ping", self.got.append)


@pytest.fixture
def pair(sim, network, regions):
    a = Echo(sim, network, "a", regions[0])
    b = Echo(sim, network, "b", regions[1])
    a.start()
    b.start()
    return a, b


def ping(sim, src, dst):
    before = len(dst.got)
    src.send(dst.address, "ping", {"n": 1})
    sim.run_until(sim.now + 2.0)
    return len(dst.got) - before


class TestDirectedBlocks:
    def test_blocks_only_the_named_direction(self, sim, network, pair):
        a, b = pair
        network.block_directed("a", "b")
        assert ping(sim, a, b) == 0
        assert ping(sim, b, a) == 1  # reverse direction unaffected

    def test_unblock_restores_delivery(self, sim, network, pair):
        a, b = pair
        network.block_directed("a", "b")
        assert ping(sim, a, b) == 0
        network.unblock_directed("a", "b")
        assert ping(sim, a, b) == 1

    def test_drop_reason_counter(self, sim, network, pair):
        a, b = pair
        network.block_directed("a", "b")
        ping(sim, a, b)
        ping(sim, a, b)
        assert network.metrics.counter("messages_dropped.blocked_directed").value == 2

    def test_both_directions_need_two_blocks(self, sim, network, pair):
        a, b = pair
        network.block_directed("a", "b")
        network.block_directed("b", "a")
        assert ping(sim, a, b) == 0
        assert ping(sim, b, a) == 0


class TestLinkDegradation:
    def test_full_loss_drops_everything(self, sim, network, pair):
        a, b = pair
        network.degrade_link("a", "b", loss_rate=1.0)
        assert ping(sim, a, b) == 0
        assert ping(sim, b, a) == 0  # degradation is symmetric
        assert network.metrics.counter("messages_dropped.degraded").value == 2

    def test_latency_multiplier_delays_delivery(self, sim, network, pair):
        a, b = pair
        base = network.topology.latency(a.region, b.region)
        network.degrade_link("a", "b", latency_multiplier=10.0)
        a.send("b", "ping", {"n": 1})
        sim.run_until(sim.now + base * 5.0)
        assert b.got == []  # would have arrived long ago undegraded
        sim.run_until(sim.now + base * 20.0)
        assert len(b.got) == 1

    def test_clear_restores_link(self, sim, network, pair):
        a, b = pair
        network.degrade_link("a", "b", loss_rate=1.0)
        assert ping(sim, a, b) == 0
        network.clear_link_degradation("a", "b")
        assert network.link_degradation("a", "b") is None
        assert ping(sim, a, b) == 1

    def test_partial_loss_is_seeded(self, sim, network, pair):
        a, b = pair
        network.degrade_link("a", "b", loss_rate=0.5)
        for _ in range(40):
            a.send("b", "ping", {"n": 1})
        sim.run_until(sim.now + 3.0)
        # Some lost, some delivered; exact split fixed by the seeded stream.
        assert 0 < len(b.got) < 40

    def test_validation(self, network):
        with pytest.raises(NetworkError):
            network.degrade_link("a", "b", latency_multiplier=0.0)
        with pytest.raises(NetworkError):
            network.degrade_link("a", "b", loss_rate=1.5)
        with pytest.raises(NetworkError):
            network.degrade_link("a", "b", loss_rate=-0.1)


class TestHealAll:
    def test_heal_all_clears_every_fault(self, sim, network, pair):
        a, b = pair
        network.block("a", "b")
        network.block_directed("b", "a")
        network.partition_regions(a.region, b.region)
        network.degrade_link("a", "b", loss_rate=1.0)
        assert ping(sim, a, b) == 0
        network.heal_all()
        assert ping(sim, a, b) == 1
        assert ping(sim, b, a) == 1
