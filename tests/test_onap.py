"""Tests for the ONAP homing integration."""

import pytest

from repro.onap import VcpeCustomer
from repro.onap.deployment import build_onap_deployment
from repro.onap.models import CloudSite, VgMuxInstance, distance_miles, onap_schema


class TestModels:
    def test_schema_has_site_and_service_capacity(self):
        schema = onap_schema()
        assert schema.get("site_vcpus").is_dynamic
        assert schema.get("mux_capacity").is_dynamic
        assert not schema.get("sriov").is_dynamic

    def test_site_attributes(self):
        site = CloudSite("pe-1", "us-east-2", 40.0, -83.0, sriov=True, kvm_version=22)
        static = site.static_attributes()
        assert static["sriov"] == "yes"
        assert static["kvm_version"] == 22
        dynamic = site.dynamic_attributes()
        assert dynamic["site_vcpus"] == site.site_vcpus

    def test_mux_vlan_attributes(self):
        site = CloudSite("pe-1", "us-east-2", 40.0, -83.0)
        mux = VgMuxInstance("m1", site, vlan_tags={"vpn-3": 103})
        static = mux.static_attributes()
        assert static["vpn::vpn-3"] == 103
        assert static["service_type"] == "vGMux"

    def test_distance_miles_sanity(self):
        # Columbus -> Montreal is ~600 miles.
        assert 450 < distance_miles(39.96, -83.0, 45.5, -73.57) < 750
        assert distance_miles(40.0, -83.0, 40.0, -83.0) == pytest.approx(0.0)


@pytest.fixture(scope="module")
def deployment():
    dep = build_onap_deployment(num_sites=12, muxes_per_site=2, seed=3)
    dep.sim.run_until(15.0)
    return dep


def home(deployment, customer):
    plans = []
    deployment.homing.home_vcpe(customer, plans.append)
    deployment.sim.run_until(deployment.sim.now + 10.0)
    assert len(plans) == 1
    return plans[0]


class TestHoming:
    def test_successful_homing(self, deployment):
        # Pick a VPN some mux carries, place the customer near that mux.
        mux = deployment.muxes[0]
        vpn = next(iter(mux.vlan_tags))
        customer = VcpeCustomer(
            "cust-1", vpn, lat=mux.site.lat + 0.1, lon=mux.site.lon + 0.1,
            max_site_distance_miles=300.0,
        )
        plan = home(deployment, customer)
        assert plan.ok
        assert plan.vgmux is not None and plan.vgmux.startswith("vgmux::")
        assert plan.vg_site is not None and plan.vg_site.startswith("site::")

    def test_unknown_vpn_fails(self, deployment):
        customer = VcpeCustomer("cust-2", "vpn-that-does-not-exist",
                                lat=40.0, lon=-83.0)
        plan = home(deployment, customer)
        assert plan.failed
        assert "vGMux" in plan.reason

    def test_distance_bound_enforced(self, deployment):
        mux = deployment.muxes[0]
        vpn = next(iter(mux.vlan_tags))
        # Customer in the middle of the Pacific: no site within 100 miles.
        customer = VcpeCustomer("cust-3", vpn, lat=30.0, lon=-150.0,
                                max_site_distance_miles=100.0)
        plan = home(deployment, customer)
        assert plan.failed
        assert plan.reason == "no feasible vG site"

    def test_selected_site_satisfies_policies(self, deployment):
        mux = deployment.muxes[2]
        vpn = next(iter(mux.vlan_tags))
        customer = VcpeCustomer(
            "cust-4", vpn, lat=mux.site.lat, lon=mux.site.lon,
            max_site_distance_miles=500.0,
        )
        plan = home(deployment, customer)
        if plan.ok:
            site = next(s for s in deployment.sites if s.node_id == plan.vg_site)
            assert site.owner == "sp"
            assert site.sriov
            assert site.kvm_version >= 22
            assert (
                distance_miles(customer.lat, customer.lon, site.lat, site.lon)
                <= customer.max_site_distance_miles
            )


class TestProximity:
    def test_closest_carrying_mux_preferred(self, deployment):
        """Among muxes carrying the VPN with capacity, the nearest wins."""
        vpn_counts = {}
        for mux in deployment.muxes:
            for vpn in mux.vlan_tags:
                vpn_counts.setdefault(vpn, []).append(mux)
        vpn, carriers = next(
            (v, m) for v, m in vpn_counts.items() if len(m) >= 2
        )
        target = carriers[0]
        customer = VcpeCustomer(
            "cust-prox", vpn, lat=target.site.lat + 0.01,
            lon=target.site.lon + 0.01, max_site_distance_miles=5000.0,
        )
        plans = []
        deployment.homing.home_vcpe(customer, plans.append)
        deployment.sim.run_until(deployment.sim.now + 10.0)
        plan = plans[0]
        assert plan.ok
        chosen = next(m for m in deployment.muxes if m.node_id == plan.vgmux)
        best = min(
            carriers,
            key=lambda m: distance_miles(customer.lat, customer.lon,
                                         m.site.lat, m.site.lon),
        )
        assert chosen.node_id == best.node_id


class TestDynamicCapacity:
    def test_exhausted_mux_not_selected(self):
        dep = build_onap_deployment(num_sites=8, muxes_per_site=1, seed=5)
        dep.sim.run_until(15.0)
        mux = dep.muxes[0]
        vpn = next(iter(mux.vlan_tags))
        customer = VcpeCustomer("cust-a", vpn, lat=mux.site.lat, lon=mux.site.lon,
                                max_site_distance_miles=2000.0)
        # Drain the mux's capacity below the demand and let FOCUS learn it.
        dep.consume_mux(mux.node_id, mux.mux_capacity - 10.0)
        dep.sim.run_until(dep.sim.now + 10.0)
        plans = []
        dep.homing.home_vcpe(customer, plans.append)
        dep.sim.run_until(dep.sim.now + 10.0)
        plan = plans[0]
        # Either another mux carries the VPN, or homing correctly fails.
        assert plan.vgmux != mux.node_id

    def test_static_inventory_blind_to_capacity(self):
        """The legacy inventory homes onto the exhausted mux anyway."""
        dep = build_onap_deployment(num_sites=8, muxes_per_site=1, seed=5)
        dep.sim.run_until(15.0)
        mux = dep.muxes[0]
        vpn = next(iter(mux.vlan_tags))
        customer = VcpeCustomer("cust-b", vpn, lat=mux.site.lat, lon=mux.site.lon,
                                max_site_distance_miles=2000.0)
        dep.consume_mux(mux.node_id, mux.mux_capacity - 10.0)
        dep.sim.run_until(dep.sim.now + 10.0)
        plan = dep.inventory.home_vcpe(customer)
        assert plan.ok
        assert plan.vgmux == mux.node_id  # blindly picked the drained mux


class TestStatistics:
    def test_success_rate(self, deployment):
        assert 0.0 <= deployment.homing.success_rate() <= 1.0
