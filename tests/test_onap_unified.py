"""Unified homing (§II-B's closing direction): sites + hosts in one FOCUS."""

import pytest

from repro.onap import VcpeCustomer
from repro.onap.deployment import build_onap_deployment


@pytest.fixture(scope="module")
def deployment():
    dep = build_onap_deployment(
        num_sites=8, muxes_per_site=1, hosts_per_site=4, seed=7
    )
    dep.sim.run_until(15.0)
    return dep


def home_unified(deployment, customer):
    plans = []
    deployment.homing.home_vcpe_unified(customer, plans.append)
    deployment.sim.run_until(deployment.sim.now + 15.0)
    assert len(plans) == 1
    return plans[0]


class TestUnifiedHoming:
    def test_hosts_registered_alongside_sites(self, deployment):
        hosts = [n for n in deployment.agents if n.startswith("host::")]
        assert len(hosts) == 8 * 4
        assert len(deployment.focus.registrar.nodes) == len(deployment.agents)

    def test_plan_resolves_down_to_a_host(self, deployment):
        mux = deployment.muxes[0]
        vpn = next(iter(mux.vlan_tags))
        customer = VcpeCustomer(
            "cust-u1", vpn, lat=mux.site.lat + 0.1, lon=mux.site.lon + 0.1,
            max_site_distance_miles=500.0,
        )
        plan = home_unified(deployment, customer)
        assert plan.ok, plan.reason
        assert plan.vg_host is not None and plan.vg_host.startswith("host::")
        # The host belongs to the selected site.
        site_id = plan.vg_site.split("::", 1)[1]
        assert plan.vg_host.startswith(f"host::{site_id}-")

    def test_selected_host_has_capacity(self, deployment):
        mux = deployment.muxes[1]
        vpn = next(iter(mux.vlan_tags))
        customer = VcpeCustomer(
            "cust-u2", vpn, lat=mux.site.lat, lon=mux.site.lon,
            max_site_distance_miles=500.0, vg_ram_mb=16384.0, vg_vcpus=8.0,
        )
        plan = home_unified(deployment, customer)
        if plan.ok:
            host = deployment.agents[plan.vg_host]
            assert host.dynamic["host_ram_mb"] >= 16384.0
            assert host.dynamic["host_vcpus"] >= 8.0

    def test_exhausted_hosts_fail_the_plan(self, deployment):
        """Drain every host in every feasible site; unified homing must
        refuse instead of handing out a site without host capacity."""
        mux = deployment.muxes[2]
        vpn = next(iter(mux.vlan_tags))
        customer = VcpeCustomer(
            "cust-u3", vpn, lat=mux.site.lat, lon=mux.site.lon,
            max_site_distance_miles=500.0,
        )
        for node_id, agent in deployment.agents.items():
            if node_id.startswith("host::"):
                agent.set_attribute("host_ram_mb", 64.0)
                agent.set_attribute("host_vcpus", 1.0)
        deployment.sim.run_until(deployment.sim.now + 12.0)
        plan = home_unified(deployment, customer)
        assert plan.failed
        assert plan.reason == "no host with capacity in site"
