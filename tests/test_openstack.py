"""Tests for the OpenStack integration: libvirt, placement, scheduler."""

import pytest

from repro.openstack import FakeLibvirt, PlacementRequest, VirtualMachine
from repro.openstack.cloud import build_openstack_cloud


class TestFakeLibvirt:
    def test_initial_resources_free(self):
        hv = FakeLibvirt(total_ram_mb=1000, total_disk_gb=10, total_vcpus=4)
        assert hv.free_ram_mb == 1000
        assert hv.free_disk_gb == 10
        assert hv.free_vcpus == 4

    def test_spawn_consumes_resources(self):
        hv = FakeLibvirt(total_ram_mb=1000, total_disk_gb=10, total_vcpus=4)
        assert hv.spawn(VirtualMachine("vm1", 400, 5, 2))
        assert hv.free_ram_mb == 600
        assert hv.free_disk_gb == 5
        assert hv.free_vcpus == 2

    def test_spawn_over_capacity_refused(self):
        hv = FakeLibvirt(total_ram_mb=1000, total_disk_gb=10, total_vcpus=4)
        assert not hv.spawn(VirtualMachine("big", 2000, 1, 1))
        assert hv.domains == {}

    def test_duplicate_domain_rejected(self):
        hv = FakeLibvirt()
        hv.spawn(VirtualMachine("vm1", 100, 1, 1))
        with pytest.raises(ValueError):
            hv.spawn(VirtualMachine("vm1", 100, 1, 1))

    def test_destroy_releases_resources(self):
        hv = FakeLibvirt(total_ram_mb=1000, total_disk_gb=10, total_vcpus=4)
        hv.spawn(VirtualMachine("vm1", 400, 5, 2))
        hv.destroy("vm1")
        assert hv.free_ram_mb == 1000
        assert hv.destroy("ghost") is None

    def test_cpu_percent_grows_with_load(self):
        hv = FakeLibvirt(total_vcpus=4)
        idle = hv.cpu_percent()
        hv.spawn(VirtualMachine("vm1", 100, 1, 2))
        assert hv.cpu_percent() > idle

    def test_collector_snapshot(self):
        hv = FakeLibvirt(total_ram_mb=1000, total_disk_gb=10, total_vcpus=4)
        snapshot = hv.collect()
        assert snapshot["ram_mb"] == 1000.0
        assert set(snapshot) == {"ram_mb", "disk_gb", "vcpus", "cpu_percent"}


class TestPlacementRequest:
    def test_to_query(self):
        request = PlacementRequest({"MEMORY_MB": 2048, "VCPU": 2}, limit=5)
        query = request.to_query()
        assert query.limit == 5
        assert query.term("ram_mb").lower == 2048.0
        assert query.term("vcpus").lower == 2.0

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError):
            PlacementRequest({"GPU": 1})

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ValueError):
            PlacementRequest({"VCPU": 1}, limit=0)


def place(cloud, resources, count=1):
    outcomes = []
    for _ in range(count):
        cloud.scheduler.select_destinations(
            PlacementRequest(resources), outcomes.append
        )
        cloud.sim.run_until(cloud.sim.now + 5.0)
    return outcomes


@pytest.mark.parametrize("mode", ["focus", "mq"])
class TestEndToEndPlacement:
    def test_vm_lands_on_a_host(self, mode):
        cloud = build_openstack_cloud(12, mode=mode, seed=1)
        cloud.sim.run_until(12.0)
        outcomes = place(cloud, {"MEMORY_MB": 2048, "DISK_GB": 10, "VCPU": 2})
        assert outcomes[0].ok
        host = cloud.host(outcomes[0].host)
        assert len(host.hypervisor.domains) == 1

    def test_placements_spread_and_fill(self, mode):
        cloud = build_openstack_cloud(8, mode=mode, seed=2)
        cloud.sim.run_until(12.0)
        outcomes = place(cloud, {"MEMORY_MB": 4096, "DISK_GB": 10, "VCPU": 2}, count=10)
        assert sum(1 for o in outcomes if o.ok) == 10
        assert cloud.total_vms() == 10

    def test_chosen_host_had_capacity(self, mode):
        cloud = build_openstack_cloud(6, mode=mode, seed=3)
        cloud.sim.run_until(12.0)
        outcomes = place(cloud, {"MEMORY_MB": 8192, "DISK_GB": 40, "VCPU": 4})
        assert outcomes[0].ok
        host = cloud.host(outcomes[0].host)
        assert host.hypervisor.free_ram_mb >= 0


class TestCapacityExhaustion:
    def test_cloud_fills_up_and_reports_failure(self):
        # 4 hosts x 8 vCPUs; each VM takes 4 vCPUs -> 8 VMs fit.
        cloud = build_openstack_cloud(4, mode="focus", seed=4)
        cloud.sim.run_until(12.0)
        outcomes = place(cloud, {"MEMORY_MB": 2048, "DISK_GB": 5, "VCPU": 4}, count=10)
        assert sum(1 for o in outcomes if o.ok) == 8
        assert sum(1 for o in outcomes if not o.ok) == 2
        assert cloud.total_vms() == 8

    def test_focus_placement_sees_updated_capacity(self):
        """After filling a host, subsequent directed pulls must exclude it."""
        cloud = build_openstack_cloud(3, mode="focus", seed=5)
        cloud.sim.run_until(12.0)
        first = place(cloud, {"MEMORY_MB": 12288, "DISK_GB": 10, "VCPU": 6})[0]
        assert first.ok
        # Let the attribute move propagate.
        cloud.sim.run_until(cloud.sim.now + 8.0)
        second = place(cloud, {"MEMORY_MB": 12288, "DISK_GB": 10, "VCPU": 6})[0]
        assert second.ok
        assert second.host != first.host


class TestBuilderValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            build_openstack_cloud(2, mode="bogus")

    def test_mq_mode_without_broker_rejected(self, sim, network, regions):
        from repro.openstack import ComputeHost

        with pytest.raises(ValueError):
            ComputeHost(sim, network, "h1", regions[0], mode="mq")
