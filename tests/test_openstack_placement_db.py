"""Unit tests for the placement backends' staleness and mapping details."""

import pytest

from repro.mq import Broker
from repro.openstack import ComputeHost, FakeLibvirt, PlacementRequest, VirtualMachine
from repro.openstack.placement import (
    DbAllocationCandidates,
    RESOURCE_ATTRIBUTES,
    _candidates_from_matches,
)


class TestCandidateMapping:
    def test_resource_attribute_mapping_complete(self):
        assert set(RESOURCE_ATTRIBUTES) == {"MEMORY_MB", "DISK_GB", "VCPU"}
        assert RESOURCE_ATTRIBUTES["MEMORY_MB"] == "ram_mb"

    def test_candidates_from_matches(self):
        matches = [
            {"node": "h1", "attrs": {"ram_mb": 1000.0, "disk_gb": 10.0,
                                     "vcpus": 2.0}, "region": "us-east-2"},
        ]
        candidates = _candidates_from_matches(matches)
        assert candidates[0].host == "h1"
        assert candidates[0].free == {"MEMORY_MB": 1000.0, "DISK_GB": 10.0,
                                      "VCPU": 2.0}
        assert candidates[0].region == "us-east-2"

    def test_missing_attrs_default_to_zero(self):
        candidates = _candidates_from_matches([{"node": "h1", "attrs": {}}])
        assert candidates[0].free["MEMORY_MB"] == 0.0


@pytest.fixture
def db_setup(sim, network, regions):
    broker = Broker(sim, network, "broker", regions[0])
    broker.start()
    db = DbAllocationCandidates(sim, network, "db", regions[0], broker.address)
    db.start()
    host = ComputeHost(
        sim, network, "h1", regions[0], mode="mq",
        broker_address=broker.address,
        hypervisor=FakeLibvirt(total_ram_mb=8192, total_disk_gb=50, total_vcpus=4),
    )
    host.start()
    return broker, db, host


class TestDbBackend:
    def test_db_learns_pushed_state(self, sim, db_setup):
        _, db, host = db_setup
        sim.run_until(3.0)
        assert "h1" in db.states
        assert db.states["h1"]["ram_mb"] == 8192.0

    def test_db_staleness_window(self, sim, db_setup):
        """Between pushes the DB serves the old state — the §III criticism."""
        _, db, host = db_setup
        sim.run_until(3.0)
        host.hypervisor.spawn(VirtualMachine("vm", 4096, 10, 2))
        # Immediately after the spawn, before the next push lands:
        assert db.states["h1"]["ram_mb"] == 8192.0
        sim.run_until(sim.now + 2.0)
        assert db.states["h1"]["ram_mb"] == 4096.0

    def test_get_by_requests_filters_and_limits(self, sim, db_setup):
        _, db, host = db_setup
        sim.run_until(3.0)
        results = []
        db.get_by_requests(
            PlacementRequest({"MEMORY_MB": 4096, "VCPU": 2}, limit=5),
            results.append,
        )
        sim.run_until(sim.now + 1.0)
        assert len(results[0]) == 1
        assert results[0][0].host == "h1"

        results.clear()
        db.get_by_requests(
            PlacementRequest({"MEMORY_MB": 999999}, limit=5), results.append
        )
        sim.run_until(sim.now + 1.0)
        assert results[0] == []


class TestComputeHostMq:
    def test_push_carries_full_attribute_view(self, sim, db_setup):
        _, db, host = db_setup
        sim.run_until(3.0)
        attrs = db.states["h1"]
        assert {"ram_mb", "disk_gb", "vcpus", "cpu_percent", "region"} <= set(attrs)

    def test_destroy_frees_capacity_on_next_push(self, sim, db_setup):
        _, db, host = db_setup
        sim.run_until(3.0)
        host.hypervisor.spawn(VirtualMachine("vm", 4096, 10, 2))
        sim.run_until(sim.now + 2.0)
        assert db.states["h1"]["ram_mb"] == 4096.0
        host.hypervisor.destroy("vm")
        sim.run_until(sim.now + 2.0)
        assert db.states["h1"]["ram_mb"] == 8192.0
