"""Scheduler-specific tests: rescheduling, anti-herd subset, live migration."""

import pytest

from repro.openstack import PlacementRequest
from repro.openstack.cloud import build_openstack_cloud


def place(cloud, resources, **kwargs):
    outcomes = []
    cloud.scheduler.select_destinations(
        PlacementRequest(resources), outcomes.append, **kwargs
    )
    cloud.sim.run_until(cloud.sim.now + 8.0)
    assert outcomes
    return outcomes[0]


class TestSelectDestinations:
    def test_no_backend_raises(self, sim, network, regions):
        from repro.openstack.scheduler import Scheduler

        scheduler = Scheduler(sim, network, "sched", regions[0])
        scheduler.start()
        with pytest.raises(RuntimeError):
            scheduler.select_destinations(
                PlacementRequest({"VCPU": 1}), lambda outcome: None
            )

    def test_no_candidates_fails_fast(self):
        cloud = build_openstack_cloud(3, mode="focus", seed=21)
        cloud.sim.run_until(10.0)
        outcome = place(cloud, {"MEMORY_MB": 999999})
        assert not outcome.ok
        assert outcome.error == "no candidates"

    def test_reschedule_consumes_attempts(self):
        """When every candidate refuses, the scheduler re-queries before
        giving up (Nova's re-scheduling)."""
        cloud = build_openstack_cloud(2, mode="focus", seed=22)
        cloud.sim.run_until(10.0)
        # Fill both hosts completely.
        for host in cloud.hosts:
            from repro.openstack.libvirt import VirtualMachine

            host.hypervisor.spawn(VirtualMachine("filler", 16384, 100, 8))
        outcome = place(cloud, {"MEMORY_MB": 4096, "DISK_GB": 10, "VCPU": 2})
        assert not outcome.ok

    def test_host_subset_spreads_placements(self):
        cloud = build_openstack_cloud(8, mode="focus", seed=23)
        cloud.sim.run_until(10.0)
        hosts = set()
        for _ in range(6):
            outcome = place(cloud, {"MEMORY_MB": 1024, "DISK_GB": 2, "VCPU": 1})
            assert outcome.ok
            hosts.add(outcome.host)
        assert len(hosts) >= 3  # subset shuffle avoided pure herding

    def test_failure_rate_statistic(self):
        cloud = build_openstack_cloud(2, mode="focus", seed=24)
        cloud.sim.run_until(10.0)
        place(cloud, {"MEMORY_MB": 2048, "DISK_GB": 5, "VCPU": 1})
        place(cloud, {"MEMORY_MB": 999999})
        assert 0.0 < cloud.scheduler.failure_rate() < 1.0


class TestLiveMigration:
    def build_loaded_cloud(self, seed=25):
        cloud = build_openstack_cloud(4, mode="focus", seed=seed)
        cloud.sim.run_until(10.0)
        outcome = place(cloud, {"MEMORY_MB": 4096, "DISK_GB": 10, "VCPU": 2})
        assert outcome.ok
        return cloud, outcome.host

    def test_migration_moves_the_vm(self):
        cloud, source = self.build_loaded_cloud()
        vm_name = next(iter(cloud.host(source).hypervisor.domains))
        outcomes = []
        cloud.scheduler.migrate(
            vm_name, source, {"MEMORY_MB": 4096, "DISK_GB": 10, "VCPU": 2},
            outcomes.append,
        )
        cloud.sim.run_until(cloud.sim.now + 10.0)
        outcome = outcomes[0]
        assert outcome.ok
        assert outcome.host != source
        assert vm_name not in cloud.host(source).hypervisor.domains
        assert vm_name in cloud.host(outcome.host).hypervisor.domains

    def test_migration_frees_source_resources(self):
        cloud, source = self.build_loaded_cloud(seed=26)
        host = cloud.host(source)
        free_before = host.hypervisor.free_ram_mb
        vm_name = next(iter(host.hypervisor.domains))
        outcomes = []
        cloud.scheduler.migrate(
            vm_name, source, {"MEMORY_MB": 4096, "DISK_GB": 10, "VCPU": 2},
            outcomes.append,
        )
        cloud.sim.run_until(cloud.sim.now + 10.0)
        assert host.hypervisor.free_ram_mb == free_before + 4096

    def test_migration_excludes_source(self):
        """Even if the source is the best candidate, it is never chosen."""
        cloud, source = self.build_loaded_cloud(seed=27)
        vm_name = next(iter(cloud.host(source).hypervisor.domains))
        for _ in range(3):
            outcomes = []
            cloud.scheduler.migrate(
                vm_name, source, {"MEMORY_MB": 1024, "DISK_GB": 1, "VCPU": 1},
                outcomes.append,
            )
            cloud.sim.run_until(cloud.sim.now + 10.0)
            assert outcomes[0].host != source
            source = outcomes[0].host  # keep migrating it around

    def test_migration_fails_when_no_target_fits(self):
        cloud = build_openstack_cloud(2, mode="focus", seed=28)
        cloud.sim.run_until(10.0)
        outcome = place(cloud, {"MEMORY_MB": 12288, "DISK_GB": 50, "VCPU": 6})
        assert outcome.ok
        other = next(h for h in cloud.hosts if h.host_id != outcome.host)
        from repro.openstack.libvirt import VirtualMachine

        other.hypervisor.spawn(VirtualMachine("blocker", 12288, 60, 6))
        cloud.sim.run_until(cloud.sim.now + 5.0)
        vm_name = next(iter(cloud.host(outcome.host).hypervisor.domains))
        outcomes = []
        cloud.scheduler.migrate(
            vm_name, outcome.host,
            {"MEMORY_MB": 12288, "DISK_GB": 50, "VCPU": 6},
            outcomes.append,
        )
        cloud.sim.run_until(cloud.sim.now + 10.0)
        assert not outcomes[0].ok
        # The VM stayed put.
        assert vm_name in cloud.host(outcome.host).hypervisor.domains
