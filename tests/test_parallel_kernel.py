"""Serial <-> parallel equivalence of the region-sharded kernel.

The canonical workload (``repro.sim.parallel.workload``) must produce
byte-identical merged summaries whether it runs on the ordinary serial
loop or under N forked region workers with conservative window sync —
including under a chaos plan whose partition and heal both land mid-run,
spanning hundreds of window barriers. A worker that raises or dies must
surface a clear :class:`~repro.errors.SimulationError`, never a hang.
"""

import os

import pytest

from repro.errors import SimulationError
from repro.faults.plan import ChurnBurst, DegradeLink, FaultPlan
from repro.sim.loop import Simulator
from repro.sim.parallel import (
    ParallelSimulation,
    assign_regions,
    fault_owner_regions,
    plan_event_surplus,
    validate_plan_for_parallel,
)
from repro.sim.parallel.workload import (
    _build_shard,
    barrier_spanning_plan,
    run_parallel,
    run_serial,
    summary_checksum,
)
from repro.sim.topology import Topology

#: Small-but-real population: every region hosts endpoints, probes and
#: sweep queries cross regions, and ~170 window barriers fit in the run.
NODES = 48
DURATION = 1.5


@pytest.fixture(scope="module")
def serial_v1():
    return summary_checksum(run_serial(NODES, DURATION))


# ------------------------------------------------------------- equivalence
@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_matches_serial_byte_for_byte(serial_v1, workers):
    merged, coordinator = run_parallel(NODES, DURATION, workers=workers)
    assert summary_checksum(merged) == serial_v1
    # ~1.5 s / ~8.8 ms lookahead windows; and real cross-region traffic.
    assert coordinator.windows_run >= 100
    assert coordinator.messages_exchanged > 0


def test_v2_profile_parallel_matches_serial():
    serial = summary_checksum(run_serial(NODES, DURATION, profile="v2"))
    merged, _ = run_parallel(NODES, DURATION, workers=2, profile="v2")
    assert summary_checksum(merged) == serial


def test_chaos_partition_and_heal_span_window_barriers():
    plan = barrier_spanning_plan(DURATION)
    serial = summary_checksum(run_serial(NODES, DURATION, plan=plan))
    merged, coordinator = run_parallel(NODES, DURATION, workers=4, plan=plan)
    assert summary_checksum(merged) == serial
    # The partition touches 3 regions -> replicated into 3 of the 4
    # workers; fire + heal each execute twice more than serially.
    assert coordinator.event_surplus() == 4


# --------------------------------------------------------- worker failures
def _tiny_shard(worker_index, owned_regions):
    return _build_shard(
        worker_index, owned_regions,
        nodes=8, duration=0.5, profile="v1", plan=None,
    )


def _raising_builder(worker_index, owned_regions):
    if worker_index == 1:
        raise RuntimeError("builder exploded on purpose")
    return _tiny_shard(worker_index, owned_regions)


def _dying_builder(worker_index, owned_regions):
    if worker_index == 1:
        os._exit(7)
    return _tiny_shard(worker_index, owned_regions)


def test_worker_exception_surfaces_traceback_not_hang():
    coordinator = ParallelSimulation(_raising_builder, workers=2)
    with pytest.raises(SimulationError, match="builder exploded on purpose"):
        coordinator.run(0.05)


def test_worker_death_surfaces_clear_error_not_hang():
    coordinator = ParallelSimulation(_dying_builder, workers=2)
    with pytest.raises(SimulationError, match="workers=1"):
        coordinator.run(0.05)


# ------------------------------------------------------------- validation
def test_simulator_workers_knob_validated():
    with pytest.raises(SimulationError, match="workers"):
        Simulator(workers=0)
    with pytest.raises(SimulationError, match="workers"):
        Simulator(workers=2.5)
    assert Simulator(workers=3).workers == 3


def test_window_wider_than_lookahead_rejected():
    lookahead = Topology().min_inter_region_latency()
    with pytest.raises(SimulationError, match="lookahead"):
        ParallelSimulation(_tiny_shard, workers=2, window=lookahead * 2)
    # At or below the lookahead is fine.
    narrow = ParallelSimulation(_tiny_shard, workers=2, window=lookahead / 2)
    assert narrow.window == lookahead / 2


def test_churn_burst_plan_rejected():
    plan = FaultPlan().add(ChurnBurst(at=0.1, joins=2, leaves=1))
    with pytest.raises(SimulationError, match="ChurnBurst"):
        validate_plan_for_parallel(plan, {})


def test_cross_region_latency_speedup_rejected():
    regions = {"a0": "us-east-2", "a1": "us-west-1"}
    fast = FaultPlan().add(
        DegradeLink(at=0.1, src="a0", dst="a1", latency_multiplier=0.5)
    )
    with pytest.raises(SimulationError, match="latency_multiplier"):
        validate_plan_for_parallel(fast, regions)
    # Slowing a link (or speeding an intra-region one) is fine.
    validate_plan_for_parallel(
        FaultPlan().add(
            DegradeLink(at=0.1, src="a0", dst="a1", latency_multiplier=3.0)
        ),
        regions,
    )
    validate_plan_for_parallel(
        FaultPlan().add(
            DegradeLink(at=0.1, src="a0", dst="a1", latency_multiplier=0.5)
        ),
        {"a0": "us-east-2", "a1": "us-east-2"},
    )


def test_assign_regions_round_robin_and_clamp():
    assert assign_regions(["a", "b", "c"], 2) == [("a", "c"), ("b",)]
    # Clamped: a region is the smallest shardable unit.
    assert assign_regions(["a", "b"], 8) == [("a",), ("b",)]
    with pytest.raises(SimulationError):
        assign_regions([], 2)
    with pytest.raises(SimulationError):
        assign_regions(["a"], 0)


def test_fault_owner_regions_and_surplus_accounting():
    regions = {"a0": "us-east-2", "a1": "us-west-1"}
    plan = barrier_spanning_plan(3.0)
    event = plan.sorted_events()[0]
    assert fault_owner_regions(event, regions) == {
        "us-east-2", "us-west-2", "us-west-1"
    }
    # 2 workers over 4 regions: both workers own a touched region, so the
    # fire + heal pair is replicated once -> surplus 2.
    assignments = assign_regions(
        ["us-east-2", "ca-central-1", "us-west-2", "us-west-1"], 2
    )
    assert plan_event_surplus(plan, assignments, regions) == 2


def test_min_inter_region_latency_is_the_floor():
    topology = Topology()
    lookahead = topology.min_inter_region_latency()
    assert lookahead > 0
    names = [r.name for r in topology.regions]
    pairwise = [
        topology.latency(a, b) for a in names for b in names if a != b
    ]
    assert lookahead == min(pairwise)
