"""Determinism-profile (v1 vs v2) equivalence and arena round-trip tests.

The v2 fast profile replaces per-draw ``random.Random`` calls with batched
numpy draws, per-message objects with arena slots, and leaves the GC frozen
over the hot population — so its byte stream legitimately differs from
v1's. What must hold instead:

* v1 stays byte-identical to the committed reference (the pinned
  ``1431b395…`` checksum) — selecting a profile must not perturb the other;
* v2 is exactly as deterministic as v1: same seed, same checksum, across
  runs and platforms (the numpy seed derivation hashes the label with
  sha256, so no ``PYTHONHASHSEED`` dependence);
* within v2, every implementation arm (membership backend, delivery
  batching, arena on/off, GC freeze on/off) is byte-identical to every
  other — the profile is the *only* sanctioned source of divergence;
* v1 and v2 agree statistically: same converged membership views, same
  failure detections, event/byte totals within a few percent;
* arena-backed message records round-trip bit-identically to object-backed
  ones (Hypothesis property below).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gossip.swim import SwimAgent, SwimConfig
from repro.sim import Network, Simulator, Topology
from repro.sim.network import Message, MessageArena
from repro.sim.process import Process
from repro.sim.rpc import DEFERRED, RpcMixin

#: The committed v1 determinism checksum (BENCH_kernel.json); byte-exactness
#: of the v1 profile is part of this repo's public contract.
V1_DETERMINISM_CHECKSUM = (
    "1431b395e0579b616f40dc342ee1d6b74d2ee0ca57e81adb77c59af4b8849bba"
)


def swim_profile_run(
    *,
    profile: str,
    seed: int = 99,
    num_nodes: int = 6,
    duration: float = 15.0,
    membership: str = "table",
    delivery_batching: bool = True,
    message_arena=None,
    freeze: bool = False,
    crash_at=None,
):
    """One seeded SWIM run; returns the canonical byte-level summary.

    Mirrors ``benchmarks/bench_kernel.py::determinism_checksum`` so the
    pinned-checksum test below really pins the benchmark's contract.
    ``crash_at=(t, index)`` stops one agent mid-run to exercise failure
    detection; the returned summary then also carries each surviving
    agent's view of the victim.
    """
    sim = Simulator(seed=seed, profile=profile)
    topology = Topology()
    network = Network(
        sim, topology,
        delivery_batching=delivery_batching,
        message_arena=message_arena,
    )
    regions = [r.name for r in topology.regions]
    agents = []
    for i in range(num_nodes):
        agent = SwimAgent(
            sim, network, f"n{i}", f"a{i}", regions[i % len(regions)],
            SwimConfig(sync_interval=5.0), membership=membership,
        )
        agent.start()
        agents.append(agent)
    for agent in agents[1:]:
        agent.join(["a0"])
    victim = None
    if crash_at is not None:
        at, index = crash_at
        victim = agents[index]
        sim.schedule_at(at, victim.stop)
    if freeze:
        sim.run_until(1.0)  # short warmup, then pin the built population
        sim.freeze_hot_state()
    sim.run_until(duration)
    if freeze:
        sim.unfreeze_hot_state()
    summary = {
        "events": sim.events_processed,
        "counters": {
            name: network.metrics.counter(name).value
            for name in network.metrics.names()["counters"]
        },
        "meters": {
            f"a{i}": network.meter(f"a{i}").bytes_in_window(0.0, duration)
            for i in range(num_nodes)
        },
    }
    if victim is not None:
        summary["victim_views"] = sorted(
            (a.name, a.members.get(victim.name).state.value)
            for a in agents
            if a is not victim and a.members.get(victim.name) is not None
        )
    return json.dumps(summary, sort_keys=True)


class TestProfileSelection:
    def test_unknown_profile_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(seed=0, profile="v3")

    def test_bad_gc_thresholds_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(seed=0, gc_thresholds=(0, 10, 10))
        with pytest.raises(SimulationError):
            Simulator(seed=0, gc_thresholds=(700,))

    def test_v2_defaults_gc_thresholds(self):
        sim = Simulator(seed=0, profile="v2")
        assert sim.gc_thresholds is not None
        assert Simulator(seed=0).gc_thresholds is None

    def test_derive_np_rng_is_label_and_seed_keyed(self):
        sim = Simulator(seed=5)
        a = sim.derive_np_rng("x").random(4).tolist()
        assert a == sim.derive_np_rng("x").random(4).tolist()
        assert a != sim.derive_np_rng("y").random(4).tolist()
        assert a != Simulator(seed=6).derive_np_rng("x").random(4).tolist()


class TestV1ByteExactness:
    def test_v1_checksum_is_the_committed_constant(self):
        """The benchmark's seeded 6-node run digests to the pinned value."""
        import hashlib
        summary = swim_profile_run(profile="v1")
        # determinism_checksum() digests the identical summary structure;
        # assert against it directly so a drift in either copy is caught.
        import sys
        from pathlib import Path
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
        try:
            from bench_kernel import determinism_checksum
        finally:
            sys.path.pop(0)
        assert determinism_checksum() == V1_DETERMINISM_CHECKSUM
        assert hashlib.sha256(summary.encode()).hexdigest() == (
            V1_DETERMINISM_CHECKSUM
        )

    def test_v1_unaffected_by_arena_opt_in(self):
        """Forcing the arena under v1 changes object lifetimes only."""
        reference = swim_profile_run(profile="v1")
        assert swim_profile_run(profile="v1", message_arena=True) == reference

    def test_v1_unaffected_by_freeze(self):
        reference = swim_profile_run(profile="v1")
        assert swim_profile_run(profile="v1", freeze=True) == reference


class TestV2Determinism:
    def test_v2_checksum_stable_across_runs(self):
        assert swim_profile_run(profile="v2") == swim_profile_run(profile="v2")

    def test_v2_differs_from_v1(self):
        """A v2 run that happened to equal v1 would mean the profile knob
        is dead — the RNG swap must actually be in effect."""
        assert swim_profile_run(profile="v2") != swim_profile_run(profile="v1")

    def test_v2_arms_byte_identical(self):
        """Membership backend, delivery batching, arena, and GC freeze are
        all implementation details *within* the v2 stream."""
        reference = swim_profile_run(profile="v2")
        arms = [
            dict(membership="dict"),
            dict(delivery_batching=False),
            dict(message_arena=False),
            dict(freeze=True),
        ]
        for arm in arms:
            assert swim_profile_run(profile="v2", **arm) == reference, arm

    def test_v2_detects_crash_deterministically(self):
        a = swim_profile_run(profile="v2", crash_at=(5.0, 3), duration=20.0)
        b = swim_profile_run(profile="v2", crash_at=(5.0, 3), duration=20.0)
        assert a == b
        assert "victim_views" in json.loads(a)


class TestStatisticalEquivalence:
    """v1 and v2 are different byte streams over the same protocol: they
    must agree on everything a protocol-level observer can measure."""

    def test_same_convergence_and_close_totals(self):
        v1 = json.loads(swim_profile_run(profile="v1", crash_at=(5.0, 3),
                                         duration=20.0))
        v2 = json.loads(swim_profile_run(profile="v2", crash_at=(5.0, 3),
                                         duration=20.0))
        # Identical failure-detection outcome: every survivor has marked the
        # victim dead in both profiles by the end of the window.
        assert v1["victim_views"] == v2["victim_views"]
        states = {state for _, state in v1["victim_views"]}
        assert states == {"dead"}
        # Event and byte totals within a few percent: the profiles run the
        # same protocol at the same rates, just different random orders.
        for key in ("events",):
            rel = abs(v1[key] - v2[key]) / max(v1[key], 1)
            assert rel < 0.05, (key, v1[key], v2[key])
        sent1 = v1["counters"]["messages_sent"]
        sent2 = v2["counters"]["messages_sent"]
        assert abs(sent1 - sent2) / max(sent1, 1) < 0.05

    def test_detection_latency_distributions_close(self):
        """Mean failure-detection latency across seeds within 25% between
        profiles (same protocol timers, so the distributions must match)."""

        def detection_latency(profile: str, seed: int) -> float:
            sim = Simulator(seed=seed, profile=profile)
            topology = Topology()
            network = Network(sim, topology)
            regions = [r.name for r in topology.regions]
            agents = []
            for i in range(8):
                agent = SwimAgent(
                    sim, network, f"n{i}", f"a{i}",
                    regions[i % len(regions)], SwimConfig(sync_interval=5.0),
                )
                agent.start()
                agents.append(agent)
            for agent in agents[1:]:
                agent.join(["a0"])
            crash_time = 6.0
            detected = []
            for agent in agents[:-1]:
                agent.on_member_dead.append(
                    lambda m, t=sim: detected.append(t.now)
                    if m.name == "n7" else None
                )
            sim.schedule_at(crash_time, agents[7].stop)
            sim.run_until(40.0)
            assert detected, f"{profile}/seed {seed}: crash never detected"
            return min(detected) - crash_time

        seeds = [1, 2, 3, 4]
        mean_v1 = sum(detection_latency("v1", s) for s in seeds) / len(seeds)
        mean_v2 = sum(detection_latency("v2", s) for s in seeds) / len(seeds)
        assert mean_v1 > 0 and mean_v2 > 0
        assert abs(mean_v1 - mean_v2) / mean_v1 < 0.25, (mean_v1, mean_v2)


class _RpcHost(Process, RpcMixin):
    def __init__(self, sim, network, address, region) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()


class TestDeferredRpcUnderArena:
    def test_deferred_respond_survives_flyweight_recycling(self):
        """A DEFERRED handler's ``respond`` must reach the original caller.

        Under v2 the delivered ``Message`` is the arena's flyweight, whose
        fields are overwritten by every subsequent delivery; a respond
        closure that read ``message.src`` lazily would reply to whatever
        endpoint happened to receive a message last (regression: FOCUS group
        queries timed out under v2 because the server never saw the reply).
        """
        sim = Simulator(seed=3, profile="v2")
        network = Network(sim, Topology())
        region = network.topology.regions[0].name
        server = _RpcHost(sim, network, "srv", region)
        client = _RpcHost(sim, network, "cli", region)
        bystander = _RpcHost(sim, network, "other", region)
        for host in (server, client, bystander):
            host.start()
            host.on("noise", lambda message: None)

        def handler(params, respond, message):
            # Respond well after other traffic has recycled the flyweight.
            sim.schedule(1.0, respond, {"echo": params["x"]})
            return DEFERRED

        server.serve("test.echo", handler)
        replies = []
        timeouts = []

        def issue() -> None:
            # Flood first so >= DIRECT_POST_MAX messages are in flight when
            # the request is sent: that pushes the request through the arena
            # (flyweight) path rather than a direct-posted Message object.
            for i in range(12):
                bystander.send("srv", "noise", {"i": i})
            client.call(
                "srv", "test.echo", {"x": 42},
                on_reply=replies.append,
                on_timeout=lambda: timeouts.append(True),
                timeout=5.0,
            )

        sim.schedule(0.1, issue)
        # Deliveries between the request and the deferred respond, so the
        # flyweight last carried a message whose src is NOT the caller.
        for i in range(10):
            sim.schedule(0.5 + 0.05 * i, bystander.send, "srv", "noise", {"i": i})
        sim.run_until(10.0)
        assert replies == [{"echo": 42}]
        assert not timeouts


# --------------------------------------------------------------- arena unit
message_fields = st.tuples(
    st.sampled_from(["swim.ping", "swim.ack", "gossip", "q"]),      # kind
    st.one_of(st.none(), st.dictionaries(st.text(max_size=5),
                                         st.integers(), max_size=3)),
    st.text(min_size=1, max_size=8),                                 # src
    st.text(min_size=1, max_size=8),                                 # dst
    st.integers(min_value=0, max_value=10**6),                       # size
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),        # sent_at
)


class TestMessageArena:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(message_fields, min_size=1, max_size=40),
           st.randoms(use_true_random=False))
    def test_round_trip_matches_object_backed(self, records, rng):
        """Interleaved alloc/release round-trips every field bit-exactly."""
        arena = MessageArena(capacity=4)  # force growth
        flyweight = Message("", None, "", "", 0, 0.0)
        live = {}
        for fields in records:
            slot = arena.alloc(*fields)
            assert slot not in live
            live[slot] = fields
            # Randomly release ~half the live slots as we go.
            for s in [s for s in list(live) if rng.random() < 0.4]:
                kind, payload, src, dst, size, sent_at = live.pop(s)
                loaded = arena.load(s, flyweight)
                assert loaded is flyweight
                assert (loaded.kind, loaded.payload, loaded.src, loaded.dst,
                        loaded.size, loaded.sent_at) == (
                    kind, payload, src, dst, size, sent_at)
                arena.release(s)
        for s, fields in live.items():
            loaded = arena.load(s, flyweight)
            assert (loaded.kind, loaded.payload, loaded.src, loaded.dst,
                    loaded.size, loaded.sent_at) == fields
            arena.release(s)
        assert len(arena) == 0

    def test_slot_reuse_is_lifo_and_growth_preserves_slots(self):
        arena = MessageArena(capacity=2)
        a = arena.alloc("k", {"x": 1}, "s", "d", 10, 1.0)
        b = arena.alloc("k", {"x": 2}, "s", "d", 20, 2.0)
        c = arena.alloc("k", {"x": 3}, "s", "d", 30, 3.0)  # forces growth
        assert arena.capacity == 4
        fly = Message("", None, "", "", 0, 0.0)
        assert arena.load(a, fly).payload == {"x": 1}
        assert arena.load(b, fly).payload == {"x": 2}
        assert arena.load(c, fly).payload == {"x": 3}
        arena.release(b)
        assert arena.alloc("k", None, "s", "d", 0, 0.0) == b  # LIFO reuse
        assert arena.payload[a] == {"x": 1}  # neighbours untouched

    def test_release_drops_references(self):
        arena = MessageArena(capacity=2)
        slot = arena.alloc("k", {"big": "payload"}, "s", "d", 1, 0.0)
        arena.release(slot)
        assert arena.payload[slot] is None
        assert arena.kind[slot] is None
