"""Tests for the application-side client (REST equivalent) and delegation."""


from repro.core.config import FocusConfig
from repro.core.query import Query, QueryTerm
from repro.core.rest import Application, QueryResponse
from repro.harness import build_focus_cluster, drain, run_query


class TestQueryResponse:
    def test_node_ids(self):
        response = QueryResponse(
            matches=[{"node": "a"}, {"node": "b"}], source="groups", elapsed=0.1
        )
        assert response.node_ids == ["a", "b"]

    def test_defaults(self):
        response = QueryResponse(matches=[], source="cache", elapsed=0.0)
        assert not response.timed_out
        assert response.error is None


class TestClient:
    def test_timeout_produces_timeout_response(self, sim, network, regions):
        app = Application(sim, network, "app", regions[0], "nobody-home")
        app.start()
        responses = []
        app.query(
            Query([QueryTerm.at_least("x", 1.0)]),
            responses.append,
        )
        sim.run_until(15.0)
        assert len(responses) == 1
        assert responses[0].timed_out
        assert responses[0].source == "timeout"

    def test_application_collects_responses(self):
        scenario = build_focus_cluster(8, seed=31, warm_start=True, with_store=False)
        run_query(scenario, Query([QueryTerm.at_least("ram_mb", 0.0)], limit=2,
                                  freshness_ms=0.0))
        run_query(scenario, Query([QueryTerm.at_least("disk_gb", 0.0)], limit=2,
                                  freshness_ms=0.0))
        assert len(scenario.app.responses) == 2

    def test_error_surfaced(self):
        scenario = build_focus_cluster(8, seed=32, warm_start=True, with_store=False)
        response = run_query(
            scenario, Query([QueryTerm("ram_mb", equals="not-numeric")])
        )
        assert response.error is not None
        assert response.source == "error"


class TestDelegationDetails:
    def make_delegating(self, num_nodes=16, seed=33):
        config = FocusConfig(delegation_enabled=True, delegation_threshold=0)
        scenario = build_focus_cluster(
            num_nodes, seed=seed, with_store=False, config=config
        )
        drain(scenario, 12.0)
        return scenario

    def test_delegated_pull_with_crashed_candidate(self):
        scenario = self.make_delegating()
        # Crash one node; the client's pull must still complete via the
        # per-group timeout.
        scenario.agents[3].stop()
        drain(scenario, 1.0)
        response = run_query(
            scenario,
            Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=0.0),
            max_wait=30.0,
        )
        assert response.source == "delegated"
        assert scenario.agents[3].node_id not in response.node_ids
        assert len(response.matches) >= 10

    def test_delegated_empty_plan(self):
        scenario = self.make_delegating()
        # A range no group covers: the delegation payload has no candidates.
        response = run_query(
            scenario,
            Query([QueryTerm.at_least("ram_mb", 999999.0)], freshness_ms=0.0),
        )
        assert response.source == "delegated"
        assert response.matches == []

    def test_delegated_matches_equal_direct(self):
        config = FocusConfig(delegation_enabled=True, delegation_threshold=0)
        delegated = build_focus_cluster(16, seed=34, with_store=False, config=config)
        drain(delegated, 12.0)
        direct = build_focus_cluster(16, seed=34, with_store=False)
        drain(direct, 12.0)
        query = Query([QueryTerm.at_most("cpu_percent", 60.0)], freshness_ms=0.0)
        a = run_query(delegated, query)
        b = run_query(direct, query)
        assert set(a.node_ids) == set(b.node_ids)
        assert a.source == "delegated"
        assert b.source == "groups"
