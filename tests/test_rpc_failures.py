"""RPC under faults: retries, idempotency, timeout metrics, pause semantics."""

import pytest

from repro.sim.process import Process
from repro.sim.rpc import RpcMixin


class Peer(Process, RpcMixin):
    """RPC endpoint that serves an ``echo`` method and counts executions."""

    def __init__(self, sim, network, address, region):
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.executions = 0
        self.serve("echo", self._echo)

    def _echo(self, params, respond, message):
        self.executions += 1
        return {"echo": params}


@pytest.fixture
def peers(sim, network, regions):
    client = Peer(sim, network, "client", regions[0])
    server = Peer(sim, network, "server", regions[1])
    client.start()
    server.start()
    return client, server


class TestExactlyOneCallback:
    def test_partitioned_destination_fires_only_timeout(self, sim, network, peers):
        client, server = peers
        network.block("client", "server")
        replies, timeouts = [], []
        client.call("server", "echo", {"n": 1}, on_reply=replies.append,
                    on_timeout=lambda: timeouts.append(True), timeout=2.0)
        sim.run_until(sim.now + 10.0)
        assert replies == []
        assert timeouts == [True]
        assert network.metrics.counter("rpc.timeouts").value == 1

    def test_late_reply_after_timeout_is_counted_not_delivered(
        self, sim, network, peers
    ):
        client, server = peers
        # Requests get through; responses are dropped until after the
        # client's timeout, then the link heals and the stale reply lands.
        network.block_directed("server", "client")
        replies, timeouts = [], []
        client.call("server", "echo", {"n": 1}, on_reply=replies.append,
                    on_timeout=lambda: timeouts.append(True), timeout=1.0)
        sim.run_until(sim.now + 2.0)
        assert timeouts == [True]
        network.unblock_directed("server", "client")
        # Nothing in flight any more: the response was dropped, not delayed,
        # so re-issue and let this one time out while a fresh reply arrives.
        client.call("server", "echo", {"n": 2}, on_reply=replies.append,
                    timeout=5.0)
        sim.run_until(sim.now + 6.0)
        assert len(replies) == 1 and timeouts == [True]

    def test_reply_cancels_timeout(self, sim, network, peers):
        client, server = peers
        replies, timeouts = [], []
        client.call("server", "echo", {"n": 1}, on_reply=replies.append,
                    on_timeout=lambda: timeouts.append(True), timeout=5.0)
        sim.run_until(sim.now + 10.0)
        assert len(replies) == 1
        assert timeouts == []


class TestRetries:
    def test_retry_succeeds_after_transient_partition(self, sim, network, peers):
        client, server = peers
        network.block("client", "server")
        sim.schedule(1.5, network.heal_all)
        replies, timeouts = [], []
        client.call("server", "echo", {"n": 1}, on_reply=replies.append,
                    on_timeout=lambda: timeouts.append(True),
                    timeout=1.0, retries=3, retry_backoff=0.2)
        sim.run_until(sim.now + 15.0)
        assert len(replies) == 1
        assert timeouts == []
        # At least the first attempt timed out before the heal.
        assert network.metrics.counter("rpc.timeouts").value >= 1

    def test_exhausted_retries_fire_timeout_once(self, sim, network, peers):
        client, server = peers
        network.block("client", "server")
        replies, timeouts = [], []
        client.call("server", "echo", {"n": 1}, on_reply=replies.append,
                    on_timeout=lambda: timeouts.append(True),
                    timeout=1.0, retries=2, retry_backoff=0.1)
        sim.run_until(sim.now + 20.0)
        assert replies == []
        assert timeouts == [True]
        # Initial attempt + 2 retries, each counted.
        assert network.metrics.counter("rpc.timeouts").value == 3

    def test_idempotency_cache_deduplicates_retransmits(self, sim, network, peers):
        client, server = peers
        server.enable_rpc_idempotency()
        # Responses are dropped, so every attempt reaches the server; the
        # handler must still execute only once.
        network.block_directed("server", "client")
        sim.schedule(2.5, network.heal_all)
        replies = []
        client.call("server", "echo", {"n": 1}, on_reply=replies.append,
                    timeout=1.0, retries=5, retry_backoff=0.2)
        sim.run_until(sim.now + 20.0)
        assert len(replies) == 1
        assert server.executions == 1

    def test_without_cache_retransmits_reexecute(self, sim, network, peers):
        client, server = peers
        network.block_directed("server", "client")
        sim.schedule(2.5, network.heal_all)
        replies = []
        client.call("server", "echo", {"n": 1}, on_reply=replies.append,
                    timeout=1.0, retries=5, retry_backoff=0.2)
        sim.run_until(sim.now + 20.0)
        assert len(replies) == 1
        assert server.executions > 1

    def test_caller_crash_during_backoff_abandons_call(self, sim, network, peers):
        client, server = peers
        network.block("client", "server")
        replies, timeouts = [], []
        client.call("server", "echo", {"n": 1}, on_reply=replies.append,
                    on_timeout=lambda: timeouts.append(True),
                    timeout=1.0, retries=5, retry_backoff=0.5)
        sim.schedule(1.1, client.stop)  # mid-backoff
        sim.run_until(sim.now + 20.0)
        assert replies == [] and timeouts == []


class TestPauseSemantics:
    def test_paused_process_drops_and_defers(self, sim, network, peers):
        client, server = peers
        ticks, shots = [], []
        server.every(1.0, lambda: ticks.append(sim.now))
        server.pause()
        server.after(0.5, lambda: shots.append(sim.now))
        client.send("server", "unhandled-kind", {})
        sim.run_until(sim.now + 3.0)
        assert ticks == []  # periodic firings skipped
        assert shots == []  # one-shot deferred
        assert server.paused_drops >= 1  # the delivery was swallowed
        server.resume()
        assert shots == [sim.now]  # deferred shot replayed on resume
        sim.run_until(sim.now + 2.5)
        assert len(ticks) >= 2  # periodic work resumed

    def test_paused_server_times_out_callers(self, sim, network, peers):
        client, server = peers
        server.pause()
        replies, timeouts = [], []
        client.call("server", "echo", {"n": 1}, on_reply=replies.append,
                    on_timeout=lambda: timeouts.append(True), timeout=2.0)
        sim.run_until(sim.now + 5.0)
        assert replies == [] and timeouts == [True]
        server.resume()
        client.call("server", "echo", {"n": 2}, on_reply=replies.append,
                    timeout=5.0)
        sim.run_until(sim.now + 6.0)
        assert len(replies) == 1
