"""``run_until(t)`` boundary semantics, pinned across every backend.

One rule, three implementations (heap, calendar, auto-migrating): the
bound is **inclusive**. An event stamped exactly ``t`` executes inside
``run_until(t)``; a zero-delay event posted by a callback running at
``t`` also executes; only stamps strictly greater than ``t`` carry over.
After the call returns, an event scheduled at exactly ``now`` belongs to
the *next* call — that is what lets the parallel kernel inject
cross-region messages at a window barrier and know they sort into the
following window on every backend.
"""

import pytest

from repro.sim.events import AUTO_CALENDAR_THRESHOLD
from repro.sim.loop import Simulator

BACKENDS = ["heap", "calendar", "auto"]


@pytest.mark.parametrize("scheduler", BACKENDS)
def test_event_at_exact_bound_runs_inside_the_call(scheduler):
    sim = Simulator(seed=0, scheduler=scheduler)
    fired = []
    sim.schedule_at(1.0, fired.append, "at-bound")
    sim.schedule_at(1.0 + 1e-12, fired.append, "past-bound")
    sim.run_until(1.0)
    assert fired == ["at-bound"]
    assert sim.now == 1.0
    sim.run_until(2.0)
    assert fired == ["at-bound", "past-bound"]


@pytest.mark.parametrize("scheduler", BACKENDS)
def test_zero_delay_post_from_callback_at_bound_runs_inside(scheduler):
    sim = Simulator(seed=0, scheduler=scheduler)
    fired = []
    sim.schedule_at(1.0, lambda: sim.post(0.0, fired.append, "chained"))
    sim.run_until(1.0)
    assert fired == ["chained"]


@pytest.mark.parametrize("scheduler", BACKENDS)
def test_event_at_now_after_return_runs_in_next_call(scheduler):
    # The parallel kernel's barrier-injection contract: after
    # run_until(t) returns, scheduling at exactly t lands in the next
    # window, on every backend.
    sim = Simulator(seed=0, scheduler=scheduler)
    sim.run_until(1.0)
    fired = []
    sim.schedule_at(1.0, fired.append, "injected")
    assert fired == []
    sim.run_until(1.0)
    assert fired == ["injected"]


@pytest.mark.parametrize("scheduler", BACKENDS)
def test_ties_at_bound_run_in_schedule_order(scheduler):
    sim = Simulator(seed=0, scheduler=scheduler)
    fired = []
    for i in range(5):
        sim.schedule_at(1.0, fired.append, i)
    sim.run_until(1.0)
    assert fired == [0, 1, 2, 3, 4]


def test_auto_migration_does_not_move_the_boundary():
    # Load the auto backend past its calendar-migration threshold with a
    # timer sitting exactly at the bound, and compare against the plain
    # heap: the set of fired timers must be identical on both sides of
    # the migration.
    def drive(scheduler):
        sim = Simulator(seed=0, scheduler=scheduler)
        fired = []
        count = AUTO_CALENDAR_THRESHOLD + 16
        for i in range(count):
            sim.schedule_at(1.0 + (i % 7) * 0.25, fired.append, i)
        sim.schedule_at(2.0, fired.append, "at-bound")
        sim.run_until(2.0)  # inclusive: 1.0..2.0 fire, 2.25+ carry over
        before = list(fired)
        sim.run_until(3.0)
        return before, fired

    auto_before, auto_all = drive("auto")
    heap_before, heap_all = drive("heap")
    assert auto_before == heap_before
    assert auto_all == heap_all
    assert "at-bound" in auto_before


def test_auto_backend_migrates_at_threshold():
    sim = Simulator(seed=0, scheduler="auto")
    for i in range(AUTO_CALENDAR_THRESHOLD + 1):
        sim.schedule_at(1.0 + i * 1e-4, lambda: None)
    # Whatever the internal representation, the boundary rule holds with
    # a timer at exactly the bound after migration.
    fired = []
    sim.schedule_at(1.05, fired.append, "post-migration-bound")
    sim.run_until(1.05)
    assert fired == ["post-migration-bound"]
