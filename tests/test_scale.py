"""Benchmark-scale sanity: the 1600-node warm deployment answers exactly.

The big Fig. 7 sweeps rely on the warm-start builder at 1600 nodes; this
test pins its correctness at that scale so a warm-start regression can't
silently skew every benchmark.
"""

import pytest

from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, run_query
from repro.workloads import node_spec_factory


@pytest.fixture(scope="module")
def big_cluster():
    return build_focus_cluster(
        1600,
        seed=404,
        warm_start=True,
        with_store=False,
        record_bandwidth_events=False,
        node_factory=node_spec_factory(seed=404),
    )


class TestBenchmarkScale:
    def test_group_structure(self, big_cluster):
        groups = [
            g for g in big_cluster.service.dgm.groups.all_groups()
            if g.size_estimate() > 0
        ]
        # 1600 nodes x 4 attributes, groups capped at 150 members.
        assert sum(g.size_estimate() for g in groups) == 1600 * 4
        assert all(g.size_estimate() <= 150 for g in groups)

    def test_exact_query_at_scale(self, big_cluster):
        query = Query(
            [QueryTerm("ram_mb", lower=4096.0, upper=6143.0),
             QueryTerm.at_least("vcpus", 2.0)],
            freshness_ms=0.0,
        )
        response = run_query(big_cluster, query)
        expected = {
            a.node_id
            for a in big_cluster.agents
            if 4096.0 <= a.dynamic["ram_mb"] <= 6143.0
            and a.dynamic["vcpus"] >= 2.0
        }
        assert set(response.node_ids) == expected
        assert not response.timed_out

    def test_latency_in_fig7b_band(self, big_cluster):
        query = Query([QueryTerm("disk_gb", lower=40.0, upper=44.9)],
                      freshness_ms=0.0)
        response = run_query(big_cluster, query)
        # The paper's flat FOCUS line sits well under a second.
        assert response.elapsed < 1.0
