"""FOCUS server crash-restart recovery (§VIII-A failure story).

The paper's claim: "failure recovery of the DGM comes naturally — when the
DGM fails and a new one is instantiated, group representatives will send
their corresponding group information, which the new DGM uses to populate
its primary group tables." Registration records live in the store.
"""

import pytest

from repro.core.query import Query, QueryTerm
from repro.core.service import FocusService
from repro.errors import FocusError
from repro.harness import build_focus_cluster, drain, run_query


def crash_and_restart(scenario):
    """Kill the service process and start a brand-new one at its address."""
    old = scenario.service
    old.stop()
    drain(scenario, 2.0)
    replacement = FocusService(
        scenario.sim,
        scenario.network,
        region=old.region,
        config=scenario.config,
        store_cluster=scenario.store,
    )
    replacement.start()
    scenario.service = replacement
    return replacement


@pytest.fixture
def recovered():
    scenario = build_focus_cluster(24, seed=111, with_store=True)
    drain(scenario, 20.0)
    replacement = crash_and_restart(scenario)
    done = []
    replacement.recover_from_store(lambda: done.append(True))
    drain(scenario, 3.0)
    assert done == [True]
    # Representatives repopulate the group tables over the next intervals.
    drain(scenario, scenario.config.report_interval * 3)
    return scenario


class TestRecovery:
    def test_registrations_restored_from_store(self, recovered):
        assert len(recovered.service.registrar.nodes) == 24
        record = next(iter(recovered.service.registrar.nodes.values()))
        assert record.region
        assert record.static

    def test_groups_rebuilt_from_reports(self, recovered):
        groups = [
            g for g in recovered.service.dgm.groups.all_groups() if g.members
        ]
        assert groups
        total = sum(len(g.members) for g in groups)
        assert total >= 0.8 * 24 * 4

    def test_dynamic_queries_work_after_recovery(self, recovered):
        query = Query([QueryTerm.at_least("ram_mb", 2048.0)], freshness_ms=0.0)
        response = run_query(recovered, query)
        expected = {
            a.node_id for a in recovered.agents
            if a.dynamic["ram_mb"] >= 2048.0
        }
        assert set(response.node_ids) == expected

    def test_static_queries_work_after_recovery(self, recovered):
        query = Query([QueryTerm.exact("service_type", "scheduler")])
        response = run_query(recovered, query)
        expected = {
            a.node_id for a in recovered.agents
            if a.static["service_type"] == "scheduler"
        }
        assert set(response.node_ids) == expected

    def test_group_regions_recovered_for_reports(self, recovered):
        """Report handling looks regions up in the registrar; after
        recovery those lookups must succeed again."""
        for group in recovered.service.dgm.groups.all_groups():
            for member in group.members.values():
                if member.region:
                    assert member.region in {
                        r.name for r in recovered.network.topology.regions
                    }

    def test_recovery_requires_store(self):
        scenario = build_focus_cluster(4, seed=112, with_store=False)
        drain(scenario, 10.0)
        with pytest.raises(FocusError):
            scenario.service.recover_from_store()


class TestAvailabilityDuringOutage:
    def test_agents_keep_gossiping_through_server_outage(self):
        scenario = build_focus_cluster(16, seed=113, with_store=True)
        drain(scenario, 20.0)
        scenario.service.stop()
        drain(scenario, 20.0)  # server gone; groups keep running
        for agent in scenario.agents:
            for membership in agent.memberships.values():
                assert membership.serf.running
                assert membership.serf.group_size() >= 1
