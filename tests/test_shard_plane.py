"""Sharded serving plane: ring ownership, legacy equivalence, scatter-gather,
staleness bounds, replicas, and shard failover."""

import hashlib
import json

from hypothesis import given, settings, strategies as st

from repro.core.config import FocusConfig
from repro.core.query import Query, QueryTerm
from repro.core.rest import Application
from repro.core.shardplane import (
    FamilyShardMap,
    family_key_of_group,
    replica_address,
    shard_address,
)
from repro.harness import build_focus_cluster
from repro.harness.failure_suite import run_shard_failover
from repro.workloads.querygen import QueryWorkload

#: Digest of the seeded ``shards=1`` run in :func:`_seeded_run_digest`.
#: Pinned so any future change to the legacy serving path (which a
#: single-shard deployment must reproduce byte-for-byte) is caught here.
SHARDS1_RUN_DIGEST = (
    "ac98736b157cf4f98ff8527f017a5333b25e50bae7134be4b226cd61ad068439"
)

# ------------------------------------------------------------ ring ownership

_attrs = st.sampled_from(["ram_mb", "disk_gb", "cpu_percent", "vcpus", "load"])
_keys = st.builds(
    lambda a, b: f"{a}.{b}", _attrs, st.integers(min_value=0, max_value=16384)
)
_key_lists = st.lists(_keys, min_size=1, max_size=40, unique=True)
_shard_counts = st.integers(min_value=1, max_value=9)


class TestRingOwnership:
    @settings(max_examples=100, deadline=None)
    @given(keys=_key_lists, count=_shard_counts)
    def test_every_family_owned_by_exactly_one_shard(self, keys, count):
        addresses = [shard_address("focus", i) for i in range(count)]
        shard_map = FamilyShardMap(addresses)
        assignment = shard_map.assignment(keys)
        assert set(assignment) == set(keys)
        for key, owner in assignment.items():
            assert owner in addresses
            # Ownership is a pure function of the key and the shard set.
            assert FamilyShardMap(list(reversed(addresses))).owner(key) == owner

    @settings(max_examples=100, deadline=None)
    @given(keys=_key_lists, count=st.integers(min_value=2, max_value=9),
           data=st.data())
    def test_removing_a_shard_moves_only_its_keys(self, keys, count, data):
        addresses = [shard_address("focus", i) for i in range(count)]
        shard_map = FamilyShardMap(addresses)
        before = shard_map.assignment(keys)
        victim = data.draw(st.sampled_from(addresses))
        shard_map.remove_shard(victim)
        after = shard_map.assignment(keys)
        for key in keys:
            if before[key] != victim:
                assert after[key] == before[key]
            else:
                assert after[key] != victim

    @settings(max_examples=100, deadline=None)
    @given(keys=_key_lists, count=st.integers(min_value=1, max_value=8))
    def test_adding_a_shard_moves_keys_only_to_it(self, keys, count):
        addresses = [shard_address("focus", i) for i in range(count)]
        shard_map = FamilyShardMap(addresses)
        before = shard_map.assignment(keys)
        newcomer = shard_address("focus", count)
        shard_map.add_shard(newcomer)
        after = shard_map.assignment(keys)
        for key in keys:
            assert after[key] in (before[key], newcomer)


class TestFamilyKey:
    def test_strips_region_qualifier_and_fork_suffix(self):
        assert family_key_of_group("ram_mb.2048") == "ram_mb.2048"
        assert family_key_of_group("ram_mb.2048@us-east") == "ram_mb.2048"
        assert family_key_of_group("ram_mb.2048@us-east#2") == "ram_mb.2048"
        assert family_key_of_group("ram_mb.2048#3") == "ram_mb.2048"


# ------------------------------------------------- seeded runs and equality

def _drain_queries(scenario, queries, *, app=None):
    """Issue ``queries`` one at a time, waiting each one out; return the
    (source, timed_out, staleness_ms, sorted node ids) tuple per query."""
    app = app or scenario.app
    outcomes = []
    for query in queries:
        box = []
        app.query(query, box.append)
        deadline = scenario.sim.now + 30.0
        while not box and scenario.sim.now < deadline:
            scenario.sim.run_until(scenario.sim.now + 0.25)
        response = box[0]
        outcomes.append((
            response.source,
            response.timed_out,
            round(response.staleness_ms, 3),
            sorted(str(m["node"]) for m in response.matches),
        ))
    return outcomes


def _workload_queries(count=6):
    workload = QueryWorkload(seed=9, limit=10, freshness_ms=0.0)
    return workload.batch(count)


def _seeded_run_digest(config):
    """Run a fixed seeded deployment + query mix; digest what it produced."""
    scenario = build_focus_cluster(
        24, seed=3, config=config, warm_start=True, with_store=False,
    )
    scenario.sim.run_until(2.0)
    outcomes = _drain_queries(scenario, _workload_queries())
    scenario.sim.run_until(20.0)
    summary = {
        "outcomes": outcomes,
        "groups": {
            group.name: sorted(group.all_node_ids())
            for group in scenario.plane.all_groups()
        },
        "bandwidth": scenario.server_bandwidth_bytes(),
        "now": scenario.sim.now,
    }
    blob = json.dumps(summary, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


class TestSingleShardIsLegacy:
    def test_plane_with_one_shard_has_no_router_or_replicas(self):
        scenario = build_focus_cluster(8, seed=1, warm_start=True,
                                       with_store=False)
        plane = scenario.plane
        assert plane.router is None
        assert plane.replicas == []
        assert plane.primary.address == "focus"
        assert plane.entry_address == "focus"
        assert scenario.service is plane.primary

    def test_seeded_single_shard_run_matches_pinned_digest(self):
        digest = _seeded_run_digest(FocusConfig())
        assert digest == _seeded_run_digest(FocusConfig())  # stable
        assert digest == SHARDS1_RUN_DIGEST

    def test_explicit_defenses_off_config_is_byte_identical(self):
        """An OverloadConfig with every gate at its default must reproduce
        the pinned digest exactly — the defense layer being wired in but
        switched off cannot perturb a single float."""
        from repro.core.admission import OverloadConfig

        config = FocusConfig(overload=OverloadConfig(
            cpu_model_enabled=False,
            throttle_enabled=False,
            queue_enabled=False,
            bulkhead_enabled=False,
            breaker_enabled=False,
        ))
        assert _seeded_run_digest(config) == SHARDS1_RUN_DIGEST


class TestScatterGatherEquivalence:
    def test_sharded_answers_match_single_server(self):
        probes = [
            # Single family: lands on exactly one shard.
            Query([QueryTerm("ram_mb", lower=4096.0, upper=6143.0)], limit=None),
            # Multi-attribute: the routed term's families span shards.
            Query([
                QueryTerm("ram_mb", lower=2048.0, upper=10240.0),
                QueryTerm.at_least("vcpus", 2.0),
            ], limit=None),
            # Static-only: served by the statics shard via the router.
            Query([QueryTerm.exact("service_type", "scheduler")], limit=None),
            Query([QueryTerm.at_most("cpu_percent", 25.0)], limit=None),
        ]
        results = {}
        for shards in (1, 4):
            scenario = build_focus_cluster(
                40, seed=6, config=FocusConfig(shards=shards),
                warm_start=True, with_store=False,
            )
            scenario.sim.run_until(2.0)
            results[shards] = _drain_queries(scenario, probes)
        for single, sharded in zip(results[1], results[4]):
            assert single[3] == sharded[3]  # identical node sets
            assert not single[1] and not sharded[1]  # neither timed out

    def test_sharded_group_tables_partition_the_families(self):
        scenario = build_focus_cluster(
            40, seed=6, config=FocusConfig(shards=4),
            warm_start=True, with_store=False,
        )
        shard_map = scenario.plane.router.shard_map
        for shard in scenario.plane.shards:
            for group in shard.dgm.groups.all_groups():
                assert shard_map.owner_of_group(group.name) == shard.address


class TestStalenessBounds:
    def test_cached_answer_reports_bounded_staleness(self):
        scenario = build_focus_cluster(
            24, seed=5, config=FocusConfig(shards=4),
            warm_start=True, with_store=False,
        )
        scenario.sim.run_until(2.0)
        query = Query([QueryTerm("ram_mb", lower=4096.0, upper=6143.0)],
                      limit=None, freshness_ms=2000.0)
        first, second = _drain_queries(scenario, [query, query])
        assert first[0] == "groups"
        assert first[2] == 0.0
        assert second[0] == "cache"
        assert 0.0 < second[2] <= 2000.0

    def test_replica_serves_repeat_queries_locally(self):
        config = FocusConfig(shards=2, replica_reads=True)
        scenario = build_focus_cluster(
            24, seed=5, config=config, warm_start=True, with_store=False,
        )
        region = scenario.network.topology.regions[1].name
        app = Application(
            scenario.sim, scenario.network, f"app-{region}", region,
            focus_address=replica_address(region),
        )
        app.start()
        scenario.sim.run_until(2.0)
        query = Query([QueryTerm("ram_mb", lower=4096.0, upper=6143.0)],
                      limit=None, freshness_ms=3000.0)
        first, second = _drain_queries(scenario, [query, query], app=app)
        assert not first[1] and not second[1]
        assert second[0] == "replica"
        assert 0.0 < second[2] <= 3000.0
        # The replica's cached answer matched the live pull's node set.
        assert second[3] == first[3]


class TestShardFailover:
    def test_failover_report_shape(self):
        report = run_shard_failover(seed=1, num_nodes=24)
        assert report["scenario"] == "shard-failover"
        assert report["shards"] == 4
        assert report["victim_shard"] in {
            shard_address("focus", i) for i in range(4)
        }
        assert report["fault_window"]["polls"] > 0
        actions = [entry["action"] for entry in report["fault_log"]]
        assert any("crash" in action for action in actions)
        assert any("restart" in action for action in actions)
        # The plane kept answering during the outage (timeouts surface as
        # timed-out partials, not lost queries) and recovered by the end.
        assert report["reconvergence_s"] is not None
