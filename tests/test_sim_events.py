"""Unit tests for the event queue primitives."""

from repro.sim.events import Event, EventQueue, TimerHandle


def make_queue():
    return EventQueue()


class TestEventOrdering:
    def test_pops_in_time_order(self):
        queue = make_queue()
        fired = []
        queue.push(2.0, fired.append, ("b",))
        queue.push(1.0, fired.append, ("a",))
        queue.push(3.0, fired.append, ("c",))
        times = []
        while True:
            event = queue.pop()
            if event is None:
                break
            times.append(event.time)
        assert times == [1.0, 2.0, 3.0]

    def test_same_time_fires_in_schedule_order(self):
        queue = make_queue()
        first = queue.push(1.0, lambda: None, ())
        second = queue.push(1.0, lambda: None, ())
        assert queue.pop() is first
        assert queue.pop() is second

    def test_event_lt_uses_seq_tiebreak(self):
        a = Event(1.0, 0, lambda: None, ())
        b = Event(1.0, 1, lambda: None, ())
        assert a < b
        assert not (b < a)


class TestCancellation:
    def test_cancelled_event_not_popped(self):
        queue = make_queue()
        event = queue.push(1.0, lambda: None, ())
        event.cancelled = True
        assert queue.pop() is None

    def test_timer_handle_cancel(self):
        queue = make_queue()
        event = queue.push(1.0, lambda: None, ())
        handle = TimerHandle(event)
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled
        assert queue.pop() is None

    def test_cancel_is_idempotent(self):
        queue = make_queue()
        handle = TimerHandle(queue.push(1.0, lambda: None, ()))
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_peek_time_skips_cancelled(self):
        queue = make_queue()
        first = queue.push(1.0, lambda: None, ())
        queue.push(2.0, lambda: None, ())
        first.cancelled = True
        assert queue.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert make_queue().peek_time() is None


class TestQueueBasics:
    def test_len_counts_entries(self):
        queue = make_queue()
        queue.push(1.0, lambda: None, ())
        queue.push(2.0, lambda: None, ())
        assert len(queue) == 2

    def test_clear(self):
        queue = make_queue()
        queue.push(1.0, lambda: None, ())
        queue.clear()
        assert queue.pop() is None

    def test_timer_handle_exposes_time(self):
        queue = make_queue()
        handle = TimerHandle(queue.push(4.5, lambda: None, ()))
        assert handle.time == 4.5
