"""Unit tests for the Simulator event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_schedule_runs_callback(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.run_until(2.0)
        assert fired == ["x"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run_until(5.0)
        assert seen == [1.5]
        assert sim.now == 5.0

    def test_schedule_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute(self, sim):
        fired = []
        sim.schedule_at(3.0, fired.append, 1)
        sim.run_until(3.0)
        assert fired == [1]

    def test_schedule_at_past_rejected(self, sim):
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_run_until_backwards_rejected(self, sim):
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_cancel_prevents_firing(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        handle.cancel()
        sim.run_until(2.0)
        assert fired == []

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []

        def outer():
            sim.schedule(0.5, fired.append, "inner")

        sim.schedule(1.0, outer)
        sim.run_until(2.0)
        assert fired == ["inner"]

    def test_run_drains_queue(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(float(i), fired.append, i)
        executed = sim.run()
        assert executed == 5
        assert fired == [0, 1, 2, 3, 4]

    def test_run_max_events(self, sim):
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=3) == 3

    def test_events_processed_counter(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run_until(3.0)
        assert sim.events_processed == 2


class TestPeriodicTimers:
    def test_call_every_fires_repeatedly(self, sim):
        fired = []
        sim.call_every(1.0, lambda: fired.append(sim.now))
        sim.run_until(5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_halts_timer(self, sim):
        fired = []
        timer = sim.call_every(1.0, lambda: fired.append(sim.now))
        sim.run_until(2.5)
        timer.stop()
        sim.run_until(10.0)
        assert fired == [1.0, 2.0]

    def test_jitter_desynchronises(self, sim):
        fired = []
        sim.call_every(1.0, lambda: fired.append(sim.now), jitter=0.5)
        sim.run_until(10.0)
        intervals = [b - a for a, b in zip(fired, fired[1:])]
        assert all(1.0 <= i <= 1.5 + 1e-9 for i in intervals)
        assert len(set(intervals)) > 1  # not a fixed period

    def test_zero_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_every(0.0, lambda: None)

    def test_set_interval(self, sim):
        fired = []
        timer = sim.call_every(1.0, lambda: fired.append(sim.now))
        sim.run_until(2.0)
        timer.set_interval(3.0)
        # The firing at t=3 was already scheduled; the new period applies
        # from the next rescheduling.
        sim.run_until(8.0)
        assert fired == [1.0, 2.0, 3.0, 6.0]

    def test_restart_after_stop_rejected(self, sim):
        timer = sim.call_every(1.0, lambda: None)
        timer.stop()
        with pytest.raises(SimulationError):
            timer.start()


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def run(seed):
            sim = Simulator(seed=seed)
            fired = []
            sim.call_every(1.0, lambda: fired.append(sim.now), jitter=0.3)
            sim.run_until(20.0)
            return fired

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_derive_rng_streams_independent(self):
        sim = Simulator(seed=1)
        a = sim.derive_rng("a")
        b = sim.derive_rng("b")
        a2 = Simulator(seed=1).derive_rng("a")
        assert [a.random() for _ in range(5)] == [a2.random() for _ in range(5)]
        assert a.random() != b.random()
