"""Unit and property tests for metrics primitives."""

import math

# Module scope: paying numpy's first-import cost inside a Hypothesis example
# blows the deadline on loaded machines.
import numpy
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.metrics import (
    BandwidthMeter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    WindowTruncatedError,
)


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_peak(self):
        g = Gauge("g")
        g.set(5.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.peak == 5.0

    def test_add(self):
        g = Gauge("g")
        g.add(3.0)
        g.add(-1.0)
        assert g.value == 2.0

    def test_peak_of_negative_only_gauge(self):
        # Regression: peak used to start at 0.0, so a gauge that only ever
        # held negative values reported a peak that was never set.
        g = Gauge("g")
        g.set(-5.0)
        g.set(-2.0)
        g.set(-9.0)
        assert g.peak == -2.0

    def test_peak_unset_is_nan(self):
        assert math.isnan(Gauge("g").peak)


class TestHistogram:
    def test_empty_stats_are_nan(self):
        h = Histogram("h")
        assert math.isnan(h.mean())
        assert math.isnan(h.percentile(50))

    def test_basic_percentiles(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)

    def test_percentile_bounds_checked(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_observe_after_percentile(self):
        h = Histogram("h")
        h.observe(10.0)
        assert h.percentile(50) == 10.0
        h.observe(0.0)
        assert h.percentile(0) == 0.0

    def test_summary_fields(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["max"] == 3.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_percentiles_monotone_and_bounded(self, values):
        h = Histogram("h")
        for v in values:
            h.observe(v)
        p50, p75, p99 = h.percentile(50), h.percentile(75), h.percentile(99)
        # Linear interpolation can exceed the extremes by float epsilon.
        tolerance = 1e-9 + abs(max(values)) * 1e-12
        assert min(values) - tolerance <= p50 <= p75 + tolerance
        assert p75 <= p99 + tolerance
        assert p99 <= max(values) + tolerance

    @settings(deadline=1000)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
    def test_percentile_matches_numpy(self, values):
        h = Histogram("h")
        for v in values:
            h.observe(v)
        for p in (25, 50, 90):
            assert h.percentile(p) == pytest.approx(
                float(numpy.percentile(values, p)), rel=1e-6, abs=1e-6
            )


class TestStreamingHistogram:
    def test_empty_stats_are_nan(self):
        h = Histogram("h", streaming=True)
        assert math.isnan(h.mean())
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.min())
        assert math.isnan(h.max())

    def test_exact_count_total_min_max(self):
        h = Histogram("h", streaming=True)
        for v in (3.0, -1.0, 10.0, 0.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(12.0)
        assert h.mean() == pytest.approx(3.0)
        assert h.min() == -1.0
        assert h.max() == 10.0

    def test_extremes_exact(self):
        h = Histogram("h", streaming=True)
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_percentile_within_relative_error(self):
        h = Histogram("h", streaming=True)
        values = [1.5 ** i for i in range(40)]
        for v in values:
            h.observe(v)
        values.sort()
        for p in (10, 50, 90, 99):
            k = max(1, math.ceil(p / 100 * len(values)))
            exact = values[k - 1]
            assert h.percentile(p) == pytest.approx(exact, rel=0.02)

    def test_negative_values(self):
        h = Histogram("h", streaming=True)
        for v in (-100.0, -10.0, -1.0):
            h.observe(v)
        assert h.percentile(0) == -100.0
        assert -11.0 < h.percentile(50) < -9.0

    def test_summary_shape_matches_exact_mode(self):
        exact, streaming = Histogram("e"), Histogram("s", streaming=True)
        for v in range(1, 1001):
            exact.observe(float(v))
            streaming.observe(float(v))
        se, ss = exact.summary(), streaming.summary()
        assert set(se) == set(ss)
        assert ss["count"] == se["count"]
        assert ss["p99"] == pytest.approx(se["p99"], rel=0.03)

    def test_bounds_checked(self):
        h = Histogram("h", streaming=True)
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1)


class TestTimeSeries:
    def test_window_and_mean(self):
        ts = TimeSeries("t")
        for i in range(10):
            ts.record(float(i), float(i) * 2)
        assert len(ts.window(2.0, 4.0)) == 3
        assert ts.mean_over(0.0, 9.0) == pytest.approx(9.0)

    def test_mean_empty_window_nan(self):
        ts = TimeSeries("t")
        assert math.isnan(ts.mean_over(0, 1))

    def test_out_of_order_records_still_queryable(self):
        ts = TimeSeries("t")
        for t in (5.0, 1.0, 3.0):
            ts.record(t, t * 10)
        assert ts.window(0.0, 3.5) == [(1.0, 10.0), (3.0, 30.0)]
        assert ts.mean_over(0.0, 6.0) == pytest.approx(30.0)

    def test_interleaved_record_and_query(self):
        ts = TimeSeries("t")
        for t in range(100):
            ts.record(float(t), 1.0)
            assert ts.mean_over(0.0, float(t)) == pytest.approx(1.0)


class TestBandwidthMeter:
    def test_totals(self):
        m = BandwidthMeter("m")
        m.on_send(0.0, 100)
        m.on_receive(1.0, 50)
        assert m.bytes_sent == 100
        assert m.bytes_received == 50
        assert m.total_bytes == 150
        assert m.messages_sent == 1
        assert m.messages_received == 1

    def test_windowed_rate(self):
        m = BandwidthMeter("m")
        for t in range(10):
            m.on_send(float(t), 100)
        assert m.bytes_in_window(0.0, 4.0) == 500
        assert m.rate_bps(0.0, 10.0) == pytest.approx(100.0)

    def test_rate_requires_positive_window(self):
        m = BandwidthMeter("m")
        with pytest.raises(ValueError):
            m.rate_bps(1.0, 1.0)

    def test_reset(self):
        m = BandwidthMeter("m")
        m.on_send(0.0, 100)
        m.reset()
        assert m.total_bytes == 0
        assert m.bytes_in_window(0, 10) == 0

    def test_no_event_recording(self):
        m = BandwidthMeter("m", record_events=False)
        m.on_send(0.0, 100)
        m.on_receive(2.0, 50)
        assert m.bytes_sent == 100
        # Aggregate mode: a window covering every observed event answers
        # exactly from the totals ...
        assert m.bytes_in_window(0, 10) == 150
        assert m.bytes_in_window(0.0, 2.0) == 150
        # ... and a partial window raises instead of undercounting (the
        # per-event breakdown was never recorded).
        with pytest.raises(WindowTruncatedError):
            m.bytes_in_window(1.0, 10.0)
        with pytest.raises(WindowTruncatedError):
            m.bytes_in_window(0.0, 1.5)

    def test_no_event_recording_empty_meter(self):
        m = BandwidthMeter("m", record_events=False)
        assert m.bytes_in_window(0, 10) == 0

    def test_interleaved_record_and_window_query(self):
        m = BandwidthMeter("m")
        for t in range(50):
            m.on_send(float(t), 10)
            assert m.bytes_in_window(0.0, float(t)) == 10 * (t + 1)

    def test_out_of_order_events_still_counted(self):
        m = BandwidthMeter("m")
        for t in (5.0, 1.0, 3.0):
            m.on_send(t, 100)
        assert m.bytes_in_window(0.0, 3.5) == 200
        assert m.bytes_in_window(0.0, 10.0) == 300

    def test_event_accessors(self):
        m = BandwidthMeter("m")
        m.on_send(1.0, 10)
        m.on_receive(2.0, 20)
        assert m.sent_events() == [(1.0, 10)]
        assert m.received_events() == [(2.0, 20)]


class TestBandwidthMeterTruncation:
    times = st.floats(min_value=0, max_value=1000, allow_nan=False)
    sizes = st.integers(min_value=0, max_value=10**6)
    events = st.lists(st.tuples(times, sizes), min_size=1, max_size=300)

    @given(sent=events, received=events, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_recent_windows_agree_with_untruncated_meter(
        self, sent, received, data
    ):
        """Any window starting inside the horizon is truncation-invariant."""
        horizon = data.draw(st.floats(min_value=1.0, max_value=500.0))
        plain = BandwidthMeter("plain")
        ring = BandwidthMeter("ring", horizon=horizon)
        for t, size in sorted(sent):
            plain.on_send(t, size)
            ring.on_send(t, size)
        for t, size in sorted(received):
            plain.on_receive(t, size)
            ring.on_receive(t, size)
        ring.truncate_now()
        newest = max(t for t, _ in sent + received)
        start = data.draw(
            st.floats(min_value=max(0.0, newest - horizon), max_value=newest)
        )
        end = data.draw(st.floats(min_value=start, max_value=1000.0))
        assert ring.bytes_in_window(start, end) == plain.bytes_in_window(start, end)
        # Totals never truncate.
        assert ring.total_bytes == plain.total_bytes
        assert ring.messages_sent == plain.messages_sent

    def test_truncation_drops_old_events(self):
        m = BandwidthMeter("m", horizon=10.0)
        for t in range(100):
            m.on_send(float(t), 1)
        m.truncate_now()
        assert len(m.sent_events()) == 11  # t in [89, 99]
        assert m.bytes_in_window(89.0, 99.0) == 11
        assert m.bytes_sent == 100  # totals unaffected

    def test_auto_truncation_bounds_memory(self):
        m = BandwidthMeter("m", horizon=1.0)
        step = 1.0 / 256  # 256 events per horizon; sweep every 1024
        for i in range(20_000):
            m.on_send(i * step, 1)
        # Without truncation the log would hold 20k events; with it the log
        # can never exceed one horizon plus one sweep period of backlog.
        assert len(m.sent_events()) <= 256 + m._TRUNCATE_EVERY

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            BandwidthMeter("m", horizon=0.0)

    def test_truncate_now_requires_horizon(self):
        m = BandwidthMeter("m")
        with pytest.raises(ValueError):
            m.truncate_now()

    def test_window_behind_truncation_point_raises(self):
        """A query reaching behind the horizon must raise, not undercount:
        events there are gone, so any number it returned would be wrong."""
        m = BandwidthMeter("m", horizon=10.0)
        for t in range(100):
            m.on_send(float(t), 1)
        m.truncate_now()
        assert m.truncated_before == 89.0
        with pytest.raises(WindowTruncatedError):
            m.bytes_in_window(0.0, 99.0)
        with pytest.raises(WindowTruncatedError):
            m.rate_bps(50.0, 99.0)
        # Starting exactly at the truncation point is the oldest exact query.
        assert m.bytes_in_window(89.0, 99.0) == 11
        assert m.bytes_in_window(95.0, 99.0) == 5

    def test_truncated_before_is_minus_inf_until_events_dropped(self):
        m = BandwidthMeter("m", horizon=10.0)
        assert m.truncated_before == -math.inf
        m.on_send(1.0, 1)
        m.on_receive(2.0, 1)
        m.truncate_now()  # nothing older than the horizon: no-op
        assert m.truncated_before == -math.inf
        assert m.bytes_in_window(0.0, 5.0) == 2  # pre-truncation starts fine

    def test_truncated_before_tracks_both_directions(self):
        m = BandwidthMeter("m", horizon=5.0)
        for t in range(20):
            m.on_send(float(t), 1)
        m.on_receive(19.0, 1)
        m.truncate_now()  # drops sends before 14.0; receive log untouched
        assert m.truncated_before == 14.0
        with pytest.raises(WindowTruncatedError):
            m.bytes_in_window(13.0, 19.0)
        assert m.bytes_in_window(14.0, 19.0) == 7

    def test_reset_clears_truncation_point(self):
        m = BandwidthMeter("m", horizon=1.0)
        for t in range(10):
            m.on_send(float(t), 1)
        m.truncate_now()
        assert m.truncated_before > -math.inf
        m.reset()
        assert m.truncated_before == -math.inf
        m.on_send(0.5, 3)
        assert m.bytes_in_window(0.0, 1.0) == 3

    def test_window_truncated_error_is_value_error(self):
        # Callers that already guard bytes_in_window with ValueError keep
        # working; the subclass only adds precision.
        assert issubclass(WindowTruncatedError, ValueError)


class TestRegistry:
    def test_same_name_same_instance(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")
        assert r.timeseries("t") is r.timeseries("t")

    def test_names_listing(self):
        r = MetricsRegistry()
        r.counter("a")
        r.histogram("b")
        names = r.names()
        assert "a" in names["counters"]
        assert "b" in names["histograms"]

    def test_get_counter_missing(self):
        assert MetricsRegistry().get_counter("nope") is None
