"""Unit tests for the network: delivery, sizes, accounting, failures."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetworkError
from repro.sim import Network, Topology, approx_size
from repro.sim.network import MESSAGE_OVERHEAD_BYTES, SizedPayload


class Sink:
    def __init__(self, address, region):
        self.address = address
        self.region = region
        self.received = []

    def handle_message(self, message):
        self.received.append(message)


def wire(network, address, region=None):
    region = region or network.topology.regions[0].name
    endpoint = Sink(address, region)
    network.register(endpoint)
    return endpoint


class TestApproxSize:
    # Wire payloads in this system are ASCII identifiers and numbers; exotic
    # unicode would be escaped by JSON and balloon past the estimate.
    _ascii = st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20
    )

    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers(-1e9, 1e9)
            | st.floats(allow_nan=False, allow_infinity=False, width=32)
            | _ascii,
            lambda children: st.lists(children, max_size=5)
            | st.dictionaries(
                st.text(
                    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                    max_size=8,
                ),
                children,
                max_size=5,
            ),
            max_leaves=20,
        )
    )
    def test_tracks_json_size(self, payload):
        """The estimate stays within a constant plus 2x of the real size."""
        estimate = approx_size(payload)
        actual = len(json.dumps(payload))
        assert estimate <= 4 * actual + 16
        assert actual <= 4 * estimate + 16

    def test_dict_estimate_close(self):
        payload = {"node": "node-00042", "ram_mb": 4096, "region": "us-east-2"}
        actual = len(json.dumps(payload))
        assert abs(approx_size(payload) - actual) < 20

    def test_deep_nesting_does_not_recurse(self):
        """The iterative walk handles nesting far past the recursion limit."""
        payload = {"v": 0}
        for _ in range(5000):
            payload = {"child": payload, "tag": "x"}
        assert approx_size(payload) > 5000  # no RecursionError

    def test_sized_payload_nested_inside_container(self):
        inner = SizedPayload({"big": "blob"}, 1000)
        assert approx_size([inner, inner]) == 2 + 2 + 1000 + 1000


class TestDelivery:
    def test_message_delivered_after_latency(self, sim, network):
        a = wire(network, "a", "us-east-2")
        b = wire(network, "b", "us-west-2")
        network.send("a", "b", "hello", {"x": 1})
        base = network.topology.latency("us-east-2", "us-west-2")
        sim.run_until(base * 0.99)
        assert b.received == []
        sim.run_until(base * (1 + network.jitter_fraction) + 0.001)
        assert len(b.received) == 1
        assert b.received[0].kind == "hello"

    def test_intra_region_faster_than_cross(self, sim, network):
        wire(network, "a", "us-east-2")
        local = wire(network, "b", "us-east-2")
        remote = wire(network, "c", "us-west-2")
        network.send("a", "b", "m", {})
        network.send("a", "c", "m", {})
        sim.run_until(0.005)
        assert len(local.received) == 1
        assert len(remote.received) == 0

    def test_send_from_unregistered_raises(self, network):
        wire(network, "b")
        with pytest.raises(NetworkError):
            network.send("ghost", "b", "m", {})

    def test_send_to_unknown_destination_dropped(self, sim, network):
        wire(network, "a")
        network.send("a", "ghost", "m", {})
        sim.run_until(1.0)
        assert network.metrics.counter("messages_dropped").value == 1

    def test_duplicate_registration_rejected(self, network):
        wire(network, "a")
        with pytest.raises(NetworkError):
            wire(network, "a")

    def test_unknown_region_rejected(self, network):
        with pytest.raises(NetworkError):
            network.register(Sink("x", "atlantis"))

    def test_delivery_tap_sees_messages(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        seen = []
        network.add_delivery_tap(seen.append)
        network.send("a", "b", "m", {"v": 1})
        sim.run_until(1.0)
        assert len(seen) == 1


class TestSizedPayload:
    def test_handler_sees_unwrapped_payload(self, sim, network):
        wire(network, "a")
        b = wire(network, "b")
        network.send("a", "b", "m", SizedPayload({"x": 1}))
        sim.run_until(1.0)
        assert b.received[0].payload == {"x": 1}

    def test_memoized_size_is_used(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        network.send("a", "b", "m", SizedPayload({"ignored": True}, size=500))
        assert network.meter("a").bytes_sent == 500 + MESSAGE_OVERHEAD_BYTES

    def test_default_size_matches_approx_size(self):
        payload = {"node": "node-00042", "ram_mb": 4096}
        assert SizedPayload(payload).size == approx_size(payload)
        assert approx_size(SizedPayload(payload, size=7)) == 7


class TestDropAccounting:
    """Every lost message increments ``messages_dropped`` exactly once."""

    def test_unknown_destination_counted_once_at_send(self, sim, network):
        wire(network, "a")
        network.send("a", "ghost", "m", {})
        # Dropped immediately: no delivery event exists to double-count it.
        assert network.metrics.counter("messages_dropped").value == 1
        assert (
            network.metrics.counter("messages_dropped.unknown_destination").value == 1
        )
        sim.run_until(5.0)
        assert network.metrics.counter("messages_dropped").value == 1

    def test_blocked_counted_once_with_reason(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        network.block("a", "b")
        network.send("a", "b", "m", {})
        sim.run_until(1.0)
        assert network.metrics.counter("messages_dropped").value == 1
        assert network.metrics.counter("messages_dropped.blocked").value == 1

    def test_dead_endpoint_counted_once_with_reason(self, sim, network):
        wire(network, "a", "us-east-2")
        wire(network, "b", "us-west-2")
        network.send("a", "b", "m", {})
        network.unregister("b")
        sim.run_until(5.0)
        assert network.metrics.counter("messages_dropped").value == 1
        assert network.metrics.counter("messages_dropped.dead_endpoint").value == 1

    def test_dead_endpoint_keeps_its_region_latency(self, sim, network):
        # Regression: a message to a just-unregistered endpoint used to be
        # delayed by the *sender's* intra-region latency regardless of where
        # the dead node lived.
        wire(network, "a", "us-east-2")
        wire(network, "b", "us-west-2")
        network.unregister("b")
        network.send("a", "b", "m", {})
        intra = network.topology.latency("us-east-2", "us-east-2")
        cross = network.topology.latency("us-east-2", "us-west-2")
        assert cross > intra * 10
        sim.run_until(intra * (1 + network.jitter_fraction) + 0.001)
        # Still in flight across the continent: not yet dropped.
        assert network.metrics.counter("messages_dropped").value == 0
        sim.run_until(cross * (1 + network.jitter_fraction) + 0.001)
        assert network.metrics.counter("messages_dropped").value == 1


class TestAccounting:
    def test_meters_track_bytes_both_ends(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        network.send("a", "b", "m", {}, size=100)
        sim.run_until(1.0)
        expected = 100 + MESSAGE_OVERHEAD_BYTES
        assert network.meter("a").bytes_sent == expected
        assert network.meter("b").bytes_received == expected

    def test_rate_over_window(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        for i in range(10):
            sim.schedule(i * 1.0, network.send, "a", "b", "m", {}, )
        sim.run_until(20.0)
        rate = network.meter("b").rate_bps(0.0, 10.0)
        assert rate > 0

    def test_meter_reset(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        network.send("a", "b", "m", {})
        sim.run_until(1.0)
        network.meter("a").reset()
        assert network.meter("a").bytes_sent == 0


class TestCounterCorrectness:
    """The cached bound-counter fast path must count exactly like the
    registry lookups it replaced, and resolve to the same objects."""

    def test_cached_counters_are_registry_counters(self, network):
        assert network._messages_sent is network.metrics.counter("messages_sent")
        assert network._bytes_sent is network.metrics.counter("bytes_sent")
        assert network._messages_delivered is network.metrics.counter(
            "messages_delivered"
        )

    def test_every_send_and_delivery_counted(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        for _ in range(25):
            network.send("a", "b", "m", {}, size=40)
        sim.run_until(5.0)
        metrics = network.metrics
        assert metrics.counter("messages_sent").value == 25
        assert metrics.counter("messages_delivered").value == 25
        assert metrics.counter("bytes_sent").value == 25 * (
            40 + MESSAGE_OVERHEAD_BYTES
        )
        assert metrics.get_counter("messages_dropped") is None  # lazy: no drops

    def test_drop_reason_counters_cached_and_correct(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        network.block("a", "b")
        for _ in range(3):
            network.send("a", "b", "m", {})
        network.send("a", "ghost", "m", {})
        sim.run_until(1.0)
        metrics = network.metrics
        assert metrics.counter("messages_dropped").value == 4
        assert metrics.counter("messages_dropped.blocked").value == 3
        assert metrics.counter("messages_dropped.unknown_destination").value == 1
        # The cache holds the very objects the registry returns.
        assert (
            network._drop_reason_counters["blocked"]
            is metrics.counter("messages_dropped.blocked")
        )


class TestWireSizeTable:
    def test_fixed_size_entry_used_when_no_explicit_size(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        network.register_message_size("fixed.kind", 500)
        network.send("a", "b", "fixed.kind", {"anything": "at all"})
        assert network.meter("a").bytes_sent == 500 + MESSAGE_OVERHEAD_BYTES

    def test_callable_entry_receives_payload(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        network.register_message_size("var.kind", lambda p: p["n"] * 10)
        network.send("a", "b", "var.kind", {"n": 7})
        assert network.meter("a").bytes_sent == 70 + MESSAGE_OVERHEAD_BYTES

    def test_explicit_size_still_wins(self, sim, network):
        wire(network, "a")
        wire(network, "b")
        network.register_message_size("fixed.kind", 500)
        network.send("a", "b", "fixed.kind", {}, size=5)
        assert network.meter("a").bytes_sent == 5 + MESSAGE_OVERHEAD_BYTES

    def test_rpc_envelope_sizes_match_generic_walk(self):
        """The precomputed RPC sizes must be byte-identical to approx_size,
        or byte accounting would change under the optimization."""
        from repro.sim.rpc import _request_size, _response_size

        for params in ({}, {"q": "cpu>2", "limit": 10}, [1, 2, 3], None, "s"):
            payload = {"id": "addr0#17", "method": "focus.query", "params": params}
            assert _request_size(payload) == approx_size(payload)
            payload = {"id": "addr0#17", "method": "focus.query", "result": params}
            assert _response_size(payload) == approx_size(payload)


class TestFailureInjection:
    def test_blocked_pair_drops(self, sim, network):
        wire(network, "a")
        b = wire(network, "b")
        network.block("a", "b")
        network.send("a", "b", "m", {})
        sim.run_until(1.0)
        assert b.received == []
        network.unblock("a", "b")
        network.send("a", "b", "m", {})
        sim.run_until(2.0)
        assert len(b.received) == 1

    def test_region_partition(self, sim, network):
        wire(network, "a", "us-east-2")
        b = wire(network, "b", "us-west-2")
        network.partition_regions("us-east-2", "us-west-2")
        network.send("a", "b", "m", {})
        sim.run_until(1.0)
        assert b.received == []
        network.heal_regions("us-east-2", "us-west-2")
        network.send("a", "b", "m", {})
        sim.run_until(2.0)
        assert len(b.received) == 1

    def test_loss_rate_drops_fraction(self, sim):
        network = Network(sim, Topology(), loss_rate=0.5)
        wire(network, "a")
        b = wire(network, "b")
        for _ in range(200):
            network.send("a", "b", "m", {})
        sim.run_until(1.0)
        assert 40 < len(b.received) < 160

    def test_heal_all(self, sim, network):
        wire(network, "a")
        b = wire(network, "b")
        network.block("a", "b")
        network.partition_regions("us-east-2", "us-west-2")
        network.heal_all()
        network.send("a", "b", "m", {})
        sim.run_until(1.0)
        assert len(b.received) == 1
