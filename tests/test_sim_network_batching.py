"""Batched delivery equivalence and in-flight fault accounting.

The delivery batcher buckets in-flight messages into per-``(src-region,
dst-region, jitter-bucket)`` classes with one coalesced sentinel event each;
it must be *invisible* — same event order, same RNG draws, same bytes on the
wire as the one-event-per-message reference path. These tests pin that
equivalence (seeded full-protocol run + a Hypothesis sweep over random
topologies and fault plans), plus the drop-accounting bugfixes that rode
along: in-flight partition/block re-checks, dead-destination partition
attribution, and jitter/loss validation with a latency clamp.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.faults import (
    ChaosEngine,
    CrashNode,
    DegradeLink,
    FaultPlan,
    PartitionRegions,
)
from repro.gossip.swim import SwimAgent, SwimConfig
from repro.sim import Network, Region, Simulator, Topology
from repro.sim.process import Process


class Chatter(Process):
    """Pings a fixed peer periodically; answers every ping with a pong."""

    def __init__(self, sim, network, address, region, peer, interval):
        super().__init__(sim, network, address, region)
        self.peer = peer
        self.interval = interval
        self.got = []
        self.on("ping", self._on_ping)
        self.on("pong", self.got.append)

    def on_start(self):
        self.every(self.interval, self._ping)

    def _ping(self):
        self.send(self.peer, "ping", {"from": self.address})

    def _on_ping(self, message):
        self.send(message.src, "pong", {"from": self.address})


def network_summary(sim, network, trace):
    """Everything an unbatched/batched pair must agree on, bit for bit."""
    meters = {
        address: (
            meter.bytes_sent,
            meter.bytes_received,
            meter.messages_sent,
            meter.messages_received,
        )
        for address, meter in sorted(network._meters.items())
    }
    counters = {
        name: network.metrics.counter(name).value
        for name in network.metrics.names()["counters"]
    }
    return {
        "events": sim.events_processed,
        "now": sim.now,
        "counters": counters,
        "meters": meters,
        "trace": trace,
    }


def chatter_run(
    *,
    batched,
    seed,
    topology=None,
    num_nodes=6,
    duration=2.0,
    loss_rate=0.0,
    jitter_fraction=0.1,
    plan=None,
):
    sim = Simulator(seed=seed)
    topo = topology if topology is not None else Topology()
    network = Network(
        sim,
        topo,
        loss_rate=loss_rate,
        jitter_fraction=jitter_fraction,
        delivery_batching=batched,
    )
    regions = [r.name for r in topo.regions]
    trace = []
    network.add_delivery_tap(
        lambda m: trace.append((sim.now, m.kind, m.src, m.dst, m.size))
    )
    nodes = []
    for i in range(num_nodes):
        peer = f"c{(i + 1) % num_nodes}"
        node = Chatter(
            sim, network, f"c{i}", regions[i % len(regions)], peer, 0.05
        )
        node.start()
        nodes.append(node)
    if plan is not None:
        engine = ChaosEngine(
            sim, network, targets={n.address: n for n in nodes}
        )
        engine.execute(plan)
    sim.run_until(duration)
    return network_summary(sim, network, trace)


def swim_run(*, batched, seed=7, num_nodes=10, duration=8.0, loss_rate=0.05):
    """Full SWIM protocol (probes, suspicion, piggyback gossip, sync)."""
    sim = Simulator(seed=seed)
    topology = Topology()
    network = Network(
        sim, topology, loss_rate=loss_rate, delivery_batching=batched
    )
    regions = [r.name for r in topology.regions]
    trace = []
    network.add_delivery_tap(
        lambda m: trace.append((sim.now, m.kind, m.src, m.dst, m.size))
    )
    agents = []
    for i in range(num_nodes):
        agent = SwimAgent(
            sim, network, f"n{i}", f"a{i}", regions[i % len(regions)],
            SwimConfig(sync_interval=5.0),
        )
        agent.start()
        agents.append(agent)
    for agent in agents[1:]:
        agent.join(["a0"])
    sim.run_until(duration)
    summary = network_summary(sim, network, trace)
    summary["alive"] = sorted(
        (a.name, len(a.members.alive())) for a in agents
    )
    return summary


class TestBatchedEquivalence:
    def test_swim_full_protocol_identical(self):
        """Seeded A/B: the batched path replays the reference run exactly —
        event counts, drop counters, per-endpoint bytes, and the full
        delivery trace (time, kind, src, dst, size per message)."""
        reference = swim_run(batched=False)
        batched = swim_run(batched=True)
        assert batched == reference

    def test_lossless_low_jitter_identical(self):
        reference = chatter_run(batched=False, seed=3, jitter_fraction=0.0)
        batched = chatter_run(batched=True, seed=3, jitter_fraction=0.0)
        assert batched == reference

    def test_equivalence_straddles_run_until_boundaries(self):
        """Deliveries parked past a run_until bound must stay parked, then
        flush on the next call — chopping the run into slices cannot change
        anything."""

        def sliced(batched):
            sim = Simulator(seed=5)
            network = Network(sim, Topology(), delivery_batching=batched)
            regions = [r.name for r in network.topology.regions]
            trace = []
            network.add_delivery_tap(
                lambda m: trace.append((sim.now, m.src, m.dst))
            )
            nodes = [
                Chatter(sim, network, f"c{i}", regions[i % len(regions)],
                        f"c{(i + 1) % 4}", 0.05)
                for i in range(4)
            ]
            for node in nodes:
                node.start()
            for stop in (0.013, 0.0371, 0.5, 0.5, 1.25):
                sim.run_until(stop)
            return network_summary(sim, network, trace)

        assert sliced(True) == sliced(False)

    def test_retarget_on_earlier_arrival(self, sim):
        """A later send that beats the class head (degraded slow link vs a
        fast one, same region pair) must re-aim the sentinel, not deliver
        out of order."""
        network = Network(sim, Topology(), jitter_fraction=0.0)
        region = network.topology.regions[0].name
        order = []

        class Sink(Process):
            def __init__(self, *args):
                super().__init__(*args)
                self.on("m", lambda msg: order.append(self.address))

        a, b, c = (Sink(sim, network, n, region) for n in ("a", "b", "c"))
        for node in (a, b, c):
            node.start()
        network.degrade_link("a", "b", latency_multiplier=10.0)
        a.send("b", "m", {})  # slow: scheduled first
        a.send("c", "m", {})  # fast: same class, earlier delivery
        sim.run_until(1.0)
        assert order == ["c", "b"]
        assert network.metrics.counter("messages_delivered").value == 2

    def test_sentinel_descheduled_when_quiescent(self, sim):
        """Once every in-flight message has delivered, the batch heap is
        empty and no sentinel lingers in the event queue."""
        network = Network(sim, Topology(), jitter_fraction=0.0)
        # Pin the direct-post threshold to 0 so even a lone send takes the
        # shared-heap path and actually schedules a sentinel.
        network._direct_post_max = 0
        region = network.topology.regions[0].name
        a = Chatter(sim, network, "a", region, "b", 1000.0)
        b = Chatter(sim, network, "b", region, "a", 1000.0)
        a.start()
        b.start()
        a.send("b", "ping", {})
        assert network._in_flight.scheduled
        sim.run_until(1.0)
        assert not network._in_flight.heap
        assert not network._in_flight.scheduled
        assert network.metrics.counter("messages_delivered").value == 2


region_names = ("r-a", "r-b", "r-c", "r-d")


def topologies():
    """Random small topologies: 1–4 regions at random coordinates."""

    def build(count, coords, intra):
        regions = [
            Region(region_names[i], coords[i][0], coords[i][1])
            for i in range(count)
        ]
        return Topology(regions, intra_region_latency=intra)

    return st.builds(
        build,
        st.integers(min_value=1, max_value=4),
        st.lists(
            st.tuples(
                st.floats(min_value=-60.0, max_value=60.0),
                st.floats(min_value=-179.0, max_value=179.0),
            ),
            min_size=4,
            max_size=4,
        ),
        st.floats(min_value=0.0001, max_value=0.01),
    )


def fault_plans(num_nodes):
    """Random fault plans over the chatter cluster's regions/addresses."""
    addresses = [f"c{i}" for i in range(num_nodes)]
    at = st.floats(min_value=0.0, max_value=1.5)
    partition = st.builds(
        lambda t, a, b, heal: PartitionRegions(
            at=t, side_a=(region_names[a],), side_b=(region_names[b],),
            heal_after=heal,
        ),
        at,
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.one_of(st.none(), st.floats(min_value=0.1, max_value=1.0)),
    )
    degrade = st.builds(
        lambda t, i, j, mult, loss, clear: DegradeLink(
            at=t, src=addresses[i], dst=addresses[j % num_nodes],
            latency_multiplier=mult, loss_rate=loss, clear_after=clear,
        ),
        at,
        st.integers(min_value=0, max_value=num_nodes - 1),
        st.integers(min_value=0, max_value=num_nodes - 1),
        st.floats(min_value=0.2, max_value=20.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.one_of(st.none(), st.floats(min_value=0.1, max_value=1.0)),
    )
    crash = st.builds(
        lambda t, i, restart: CrashNode(
            at=t, target=addresses[i], restart_after=restart
        ),
        at,
        st.integers(min_value=0, max_value=num_nodes - 1),
        st.one_of(st.none(), st.floats(min_value=0.1, max_value=1.0)),
    )
    return st.lists(
        st.one_of(partition, degrade, crash), min_size=0, max_size=5
    ).map(lambda events: FaultPlan().extend(events))


class TestBatchedEquivalenceProperty:
    @given(
        topology=topologies(),
        seed=st.integers(min_value=0, max_value=2**20),
        loss_rate=st.floats(min_value=0.0, max_value=0.3),
        jitter_fraction=st.floats(min_value=0.0, max_value=0.5),
        plan=fault_plans(num_nodes=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_batched_is_event_order_and_byte_identical(
        self, topology, seed, loss_rate, jitter_fraction, plan
    ):
        """Across random topologies, jitter/loss settings and fault plans
        (partitions with heals, degraded links, crash/restart), the batched
        path produces the identical delivery trace, counters and meters."""
        kwargs = dict(
            seed=seed,
            topology=topology,
            num_nodes=5,
            duration=2.0,
            loss_rate=loss_rate,
            jitter_fraction=jitter_fraction,
            plan=plan,
        )
        reference = chatter_run(batched=False, **kwargs)
        batched = chatter_run(batched=True, **kwargs)
        assert batched == reference


@pytest.fixture
def cross_region_pair(sim):
    network = Network(sim, Topology(), jitter_fraction=0.0)
    regions = [r.name for r in network.topology.regions]
    a = Chatter(sim, network, "a", regions[0], "b", 1000.0)
    b = Chatter(sim, network, "b", regions[1], "a", 1000.0)
    a.start()
    b.start()
    return network, a, b


class TestInFlightFaults:
    def test_partition_injected_mid_flight_drops(self, sim, cross_region_pair):
        """A partition raised after send but before delivery must stop the
        message (it used to sail through: _drop_reason only ran at send)."""
        network, a, b = cross_region_pair
        a.send("b", "ping", {"n": 1})
        network.partition_regions(a.region, b.region)  # message is in flight
        sim.run_until(2.0)
        assert b.got == [] and a.got == []
        assert network.metrics.counter(
            "messages_dropped.partitioned_in_flight"
        ).value == 1
        assert network.metrics.counter("messages_delivered").value == 0

    def test_block_injected_mid_flight_drops(self, sim, cross_region_pair):
        network, a, b = cross_region_pair
        a.send("b", "ping", {"n": 1})
        network.block("a", "b")
        sim.run_until(2.0)
        assert network.metrics.counter(
            "messages_dropped.blocked_in_flight"
        ).value == 1

    def test_directed_block_mid_flight_only_named_direction(
        self, sim, cross_region_pair
    ):
        network, a, b = cross_region_pair
        a.send("b", "ping", {"n": 1})
        network.block_directed("b", "a")  # reverse direction only
        sim.run_until(2.0)
        # a->b crossed; b's pong reply a<-b was blocked in flight? No: the
        # block was installed before the pong was *sent*, so it drops at
        # send time under the existing reason.
        assert network.metrics.counter("messages_delivered").value == 1
        assert network.metrics.counter(
            "messages_dropped.blocked_directed"
        ).value == 1

    def test_sender_death_does_not_hide_in_flight_partition(
        self, sim, cross_region_pair
    ):
        """The in-flight re-check resolves the sender's region through
        _last_region, so a message whose sender crashed mid-flight still
        counts as partitioned."""
        network, a, b = cross_region_pair
        a.send("b", "ping", {"n": 1})
        a.stop()
        network.partition_regions(a.region, b.region)
        sim.run_until(2.0)
        assert network.metrics.counter(
            "messages_dropped.partitioned_in_flight"
        ).value == 1

    def test_heal_before_delivery_lets_message_through(
        self, sim, cross_region_pair
    ):
        network, a, b = cross_region_pair
        a.send("b", "ping", {"n": 1})
        network.partition_regions(a.region, b.region)
        network.heal_regions(a.region, b.region)
        sim.run_until(2.0)
        assert network.metrics.counter("messages_delivered").value == 2

    def test_chaos_engine_partition_drops_in_flight(self):
        """Seeded end-to-end: a ChaosEngine partition landing while pings are
        in flight produces partitioned/partitioned_in_flight drops, never a
        misfiled dead_endpoint."""
        plan = FaultPlan().add(
            PartitionRegions(
                at=0.47,  # between ping ticks: replies are still in flight
                side_a=("us-east-2",),
                side_b=("ca-central-1", "us-west-2", "us-west-1"),
                heal_after=0.75,
            )
        )
        summary = chatter_run(batched=True, seed=17, plan=plan, duration=3.0)
        counters = summary["counters"]
        assert counters.get("messages_dropped.partitioned", 0) > 0
        assert counters.get("messages_dropped.partitioned_in_flight", 0) > 0
        assert "messages_dropped.dead_endpoint" not in counters
        # And the run is seeded: an identical plan replays byte-identically.
        replay = chatter_run(batched=True, seed=17, plan=plan, duration=3.0)
        assert replay == summary


class TestDeadDestinationPartitionAttribution:
    def test_partitioned_wins_over_dead_endpoint(self, sim, cross_region_pair):
        """Send toward a recently-dead endpoint across a partition: the drop
        is the partition's fault and must be attributed to it (it used to
        slip past the region check and count as dead_endpoint)."""
        network, a, b = cross_region_pair
        b.stop()
        network.partition_regions(a.region, b.region)
        a.send("b", "ping", {"n": 1})
        sim.run_until(2.0)
        counters = {
            name: network.metrics.counter(name).value
            for name in network.metrics.names()["counters"]
        }
        assert counters.get("messages_dropped.partitioned") == 1
        assert "messages_dropped.dead_endpoint" not in counters

    def test_dead_endpoint_still_counted_without_partition(
        self, sim, cross_region_pair
    ):
        network, a, b = cross_region_pair
        b.stop()
        a.send("b", "ping", {"n": 1})
        sim.run_until(2.0)
        assert network.metrics.counter(
            "messages_dropped.dead_endpoint"
        ).value == 1

    def test_never_registered_destination_still_unknown(
        self, sim, cross_region_pair
    ):
        network, a, _ = cross_region_pair
        a.send("ghost", "ping", {"n": 1})
        assert network.metrics.counter(
            "messages_dropped.unknown_destination"
        ).value == 1


class TestParameterValidationAndClamp:
    def test_negative_jitter_fraction_rejected(self, sim):
        with pytest.raises(NetworkError):
            Network(sim, Topology(), jitter_fraction=-0.1)

    @pytest.mark.parametrize("loss", [-0.01, 1.01, 2.0])
    def test_out_of_range_loss_rate_rejected(self, sim, loss):
        with pytest.raises(NetworkError):
            Network(sim, Topology(), loss_rate=loss)

    def test_boundary_values_accepted(self, sim):
        Network(sim, Topology(), loss_rate=0.0, jitter_fraction=0.0)
        Network(Simulator(seed=1), Topology(), loss_rate=1.0)

    @pytest.mark.parametrize("batched", [True, False])
    def test_negative_latency_clamped_to_now(self, batched):
        """A degenerate topology (negative configured latency) amplified by a
        degrade_link multiplier must clamp to zero-delay delivery, never
        schedule into the simulated past."""
        sim = Simulator(seed=2)
        topo = Topology(
            [Region("weird", 0.0, 0.0)], intra_region_latency=-0.002
        )
        network = Network(
            sim, topo, jitter_fraction=0.0, delivery_batching=batched
        )
        a = Chatter(sim, network, "a", "weird", "b", 1000.0)
        b = Chatter(sim, network, "b", "weird", "a", 1000.0)
        a.start()
        b.start()
        network.degrade_link("a", "b", latency_multiplier=5.0)
        sim.run_until(1.0)
        delivered_at = []
        network.add_delivery_tap(lambda m: delivered_at.append(sim.now))
        a.send("b", "ping", {"n": 1})  # raw latency would be -0.01s
        sim.run_until(2.0)
        assert delivered_at and delivered_at[0] == pytest.approx(1.0)
        assert network.metrics.counter("messages_delivered").value >= 1
