"""Unit tests for the Process base class."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import Process


class Echo(Process):
    def __init__(self, sim, network, address, region):
        super().__init__(sim, network, address, region)
        self.seen = []
        self.unhandled = []
        self.on("echo", self.seen.append)

    def on_unhandled(self, message):
        self.unhandled.append(message)


@pytest.fixture
def pair(sim, network, regions):
    a = Echo(sim, network, "a", regions[0])
    b = Echo(sim, network, "b", regions[0])
    a.start()
    b.start()
    return a, b


class TestDispatch:
    def test_handler_receives_message(self, sim, pair):
        a, b = pair
        a.send("b", "echo", {"v": 1})
        sim.run_until(1.0)
        assert len(b.seen) == 1

    def test_unhandled_hook(self, sim, pair):
        a, b = pair
        a.send("b", "mystery", {})
        sim.run_until(1.0)
        assert len(b.unhandled) == 1

    def test_duplicate_handler_rejected(self, pair):
        a, _ = pair
        with pytest.raises(SimulationError):
            a.on("echo", lambda m: None)

    def test_stopped_process_ignores_messages(self, sim, pair):
        a, b = pair
        b.stop()
        a.send("b", "echo", {})
        sim.run_until(1.0)
        assert b.seen == []

    def test_send_after_stop_is_noop(self, sim, pair):
        a, b = pair
        a.stop()
        a.send("b", "echo", {})
        sim.run_until(1.0)
        assert b.seen == []


class TestLifecycle:
    def test_double_start_rejected(self, pair):
        a, _ = pair
        with pytest.raises(SimulationError):
            a.start()

    def test_stop_is_idempotent(self, pair):
        a, _ = pair
        a.stop()
        a.stop()
        assert not a.running

    def test_stop_cancels_timers(self, sim, pair):
        a, _ = pair
        fired = []
        a.every(1.0, lambda: fired.append(sim.now))
        sim.run_until(2.5)
        a.stop()
        sim.run_until(10.0)
        assert fired == [1.0, 2.0]

    def test_after_guarded_by_running(self, sim, pair):
        a, _ = pair
        fired = []
        a.after(1.0, fired.append, "x")
        a.stop()
        sim.run_until(2.0)
        assert fired == []

    def test_after_fires_while_running(self, sim, pair):
        a, _ = pair
        fired = []
        a.after(1.0, fired.append, "x")
        sim.run_until(2.0)
        assert fired == ["x"]
