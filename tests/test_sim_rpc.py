"""Unit tests for the request/response layer."""

import pytest

from repro.sim.process import Process
from repro.sim.rpc import DEFERRED, RpcMixin


class Server(Process, RpcMixin):
    def __init__(self, sim, network, address, region):
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.serve("add", lambda p, respond, msg: {"sum": p["a"] + p["b"]})
        self.serve("slow", self._slow)
        self.serve("never", lambda p, respond, msg: DEFERRED)

    def _slow(self, params, respond, message):
        self.after(params["delay"], respond, {"ok": True})
        return DEFERRED


class Client(Process, RpcMixin):
    def __init__(self, sim, network, address, region):
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()


@pytest.fixture
def rpc_pair(sim, network, regions):
    server = Server(sim, network, "server", regions[0])
    client = Client(sim, network, "client", regions[0])
    server.start()
    client.start()
    return server, client


class TestCalls:
    def test_sync_method(self, sim, rpc_pair):
        _, client = rpc_pair
        results = []
        client.call("server", "add", {"a": 2, "b": 3}, on_reply=results.append)
        sim.run_until(1.0)
        assert results == [{"sum": 5}]

    def test_deferred_method(self, sim, rpc_pair):
        _, client = rpc_pair
        results = []
        client.call("server", "slow", {"delay": 2.0}, on_reply=results.append)
        sim.run_until(1.0)
        assert results == []
        sim.run_until(3.0)
        assert results == [{"ok": True}]

    def test_unknown_method_returns_error(self, sim, rpc_pair):
        _, client = rpc_pair
        results = []
        client.call("server", "nope", {}, on_reply=results.append)
        sim.run_until(1.0)
        assert "error" in results[0]

    def test_concurrent_calls_correlated(self, sim, rpc_pair):
        _, client = rpc_pair
        results = []
        for i in range(5):
            client.call(
                "server", "add", {"a": i, "b": 0},
                on_reply=lambda r, i=i: results.append((i, r["sum"])),
            )
        sim.run_until(1.0)
        assert sorted(results) == [(i, i) for i in range(5)]


class TestTimeouts:
    def test_timeout_fires_when_no_reply(self, sim, rpc_pair):
        _, client = rpc_pair
        timeouts = []
        client.call(
            "server", "never", {},
            on_reply=lambda r: pytest.fail("should not reply"),
            on_timeout=lambda: timeouts.append(sim.now),
            timeout=2.0,
        )
        sim.run_until(5.0)
        assert timeouts == [2.0]

    def test_late_reply_after_timeout_dropped(self, sim, rpc_pair):
        _, client = rpc_pair
        replies, timeouts = [], []
        client.call(
            "server", "slow", {"delay": 3.0},
            on_reply=replies.append,
            on_timeout=lambda: timeouts.append(True),
            timeout=1.0,
        )
        sim.run_until(10.0)
        assert timeouts == [True]
        assert replies == []

    def test_timeout_to_dead_server(self, sim, rpc_pair):
        server, client = rpc_pair
        server.stop()
        timeouts = []
        client.call(
            "server", "add", {"a": 1, "b": 1},
            on_reply=lambda r: pytest.fail("server is dead"),
            on_timeout=lambda: timeouts.append(True),
            timeout=1.0,
        )
        sim.run_until(2.0)
        assert timeouts == [True]

    def test_cancel_call(self, sim, rpc_pair):
        _, client = rpc_pair
        replies = []
        call_id = client.call("server", "add", {"a": 1, "b": 1}, on_reply=replies.append)
        client.cancel_call(call_id)
        sim.run_until(1.0)
        assert replies == []
