"""Scheduler equivalence and edge-case tests.

The calendar-queue/heap hybrid (``scheduler="calendar"``) and the timer
wheel (``coalesce_timers=True``) must be *bit-identical* to the reference
single-heap scheduler: same event order, same RNG draws, same
``events_processed``, same metrics. These tests pin that equivalence on a
real seeded SWIM run and on randomized synthetic workloads, then cover the
edge cases a bucketed scheduler can get wrong: bucket-boundary exactness,
cancellation races, tombstone compaction, overflow migration, and the
timer-wheel interval-class bookkeeping.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.gossip.swim import SwimAgent, SwimConfig
from repro.sim import Network, Simulator, Topology
from repro.sim.events import DEFAULT_BUCKET_WIDTH, EventQueue

CONFIGS = [
    ("heap", False),
    ("heap", True),
    ("calendar", False),
    ("calendar", True),
]

CONFIG_IDS = [f"{s}-{'wheel' if c else 'plain'}" for s, c in CONFIGS]


def swim_summary(scheduler: str, coalesce: bool, seed: int = 7) -> str:
    """Canonical JSON summary of a seeded SWIM run under one scheduler."""
    sim = Simulator(seed=seed, scheduler=scheduler, coalesce_timers=coalesce)
    topology = Topology()
    network = Network(sim, topology)
    regions = [r.name for r in topology.regions]
    agents = []
    for i in range(8):
        agent = SwimAgent(
            sim,
            network,
            f"n{i}",
            f"addr{i}",
            regions[i % len(regions)],
            SwimConfig(sync_interval=5.0),
        )
        agent.start()
        agents.append(agent)
    for agent in agents[1:]:
        agent.join(["addr0"])
    sim.run_until(8.0)
    agents[3].stop()  # exercise timer teardown + dead-endpoint deliveries
    sim.run_until(20.0)
    summary = {
        "events_processed": sim.events_processed,
        "counters": {
            name: network.metrics.counter(name).value
            for name in network.metrics.names()["counters"]
        },
        "meters": {
            f"addr{i}": [
                network.meter(f"addr{i}").total_bytes,
                network.meter(f"addr{i}").bytes_in_window(5.0, 20.0),
            ]
            for i in range(8)
        },
        "alive_views": sorted(
            (agent.name, sorted(m.name for m in agent.alive_members()))
            for agent in agents
            if agent.running
        ),
    }
    return json.dumps(summary, sort_keys=True)


class TestSchedulerEquivalence:
    """The acceptance gate: every backend produces the same bytes."""

    def test_swim_run_identical_across_all_configs(self):
        reference = swim_summary("heap", False)
        for scheduler, coalesce in CONFIGS[1:]:
            assert swim_summary(scheduler, coalesce) == reference, (
                f"{scheduler}/coalesce={coalesce} diverged from heap baseline"
            )

    def test_synthetic_timer_storm_trace_identical(self):
        """Mixed-interval repeating timers: exact (time, seq, cb) traces."""

        def trace(scheduler, coalesce):
            sim = Simulator(seed=3, scheduler=scheduler, coalesce_timers=coalesce)
            log = []
            timers = []
            for i, interval in enumerate([0.1, 0.1, 0.25, 0.25, 1.0, 0.1]):
                timers.append(
                    sim.call_every(
                        interval,
                        (lambda i=i: log.append((round(sim.now, 9), i))),
                        jitter=interval * 0.1,
                        rng=sim.derive_rng(f"t{i}"),
                    )
                )
            sim.schedule(2.0, timers[1].stop)
            sim.schedule(3.0, lambda: timers[2].set_interval(0.5))
            sim.run_until(6.0)
            return log, sim.events_processed

        reference = trace("heap", False)
        for scheduler, coalesce in CONFIGS[1:]:
            assert trace(scheduler, coalesce) == reference

    def test_auto_backend_matches_reference(self):
        """The width-adaptive facade is just another bit-identical backend."""
        reference = swim_summary("heap", False)
        assert swim_summary("auto", False) == reference
        assert swim_summary("auto", True) == reference

    def test_auto_upgrades_at_threshold_and_preserves_order(self):
        """Crossing the live-width threshold migrates heap -> calendar with
        every pending (time, seq) key intact and tombstones dropped."""
        from repro.sim.events import AutoEventQueue

        sim = Simulator(seed=0, scheduler="auto")
        queue = sim._queue
        assert isinstance(queue, AutoEventQueue)
        assert queue.backend_name == "heap"
        queue._threshold = 24
        fired = []
        rng = random.Random(5)
        delays = [rng.random() * 30.0 for _ in range(64)]
        handles = [
            sim.schedule(d, lambda i=i: fired.append(i))
            for i, d in enumerate(delays)
        ]
        for i in range(0, 16, 2):  # tombstone some pre-migration entries
            handles[i].cancel()
        assert queue.backend_name == "calendar"
        sim.run_until(40.0)
        cancelled = set(range(0, 16, 2))
        expected = [
            i for i, _ in sorted(enumerate(delays), key=lambda p: (p[1], p[0]))
            if i not in cancelled
        ]
        assert fired == expected

    def test_auto_seq_counter_shared_across_migration(self):
        """Events keyed before and after the upgrade interleave correctly —
        the sequence counter must be one stream across both backends."""
        from repro.sim.events import AutoEventQueue

        sim = Simulator(seed=0, scheduler="auto")
        assert isinstance(sim._queue, AutoEventQueue)
        sim._queue._threshold = 8
        fired = []
        # Same target time for everything: ordering is decided purely by seq.
        for i in range(20):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        assert sim._queue.backend_name == "calendar"
        sim.run_until(2.0)
        assert fired == list(range(20))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_random_one_shot_workload_order_identical(self, seed):
        """Random schedule/cancel mixes pop in identical order everywhere."""
        rng = random.Random(seed)
        ops = []
        t = 0.0
        for i in range(120):
            t += rng.random() * 2.0
            # Delays straddle the wheel horizon (0.05 * 512 = 25.6 s) so
            # bucket inserts, front pushes and overflow all get exercised.
            ops.append((t, rng.random() * 40.0, rng.random() < 0.25))

        def run(scheduler):
            sim = Simulator(seed=0, scheduler=scheduler)
            fired = []
            for i, (at, delay, cancel) in enumerate(ops):
                def arm(i=i, delay=delay, cancel=cancel):
                    handle = sim.schedule(delay, lambda i=i: fired.append((round(sim.now, 9), i)))
                    if cancel:
                        handle.cancel()
                sim.schedule_at(at, arm)
            sim.run_until(120.0)
            return fired, sim.events_processed

        reference = run("heap")
        assert run("calendar") == reference
        assert run("auto") == reference


class TestCalendarQueueEdges:
    def test_run_until_exact_at_bucket_edge(self):
        """Events exactly on a bucket boundary fire when the clock reaches it."""
        sim = Simulator(seed=0, scheduler="calendar")
        width = sim._queue.bucket_width
        fired = []
        for k in (1, 2, 3):
            sim.schedule_at(k * width, lambda k=k: fired.append(k))
        sim.run_until(2 * width)
        assert fired == [1, 2]
        assert sim.now == 2 * width
        sim.run_until(3 * width)
        assert fired == [1, 2, 3]

    def test_zero_delay_self_rescheduling(self):
        """Zero-delay chains land in the already-draining front bucket."""
        sim = Simulator(seed=0, scheduler="calendar")
        hits = []

        def chain(n):
            hits.append(n)
            if n < 5:
                sim.schedule(0.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run_until(0.0)
        assert hits == [0, 1, 2, 3, 4, 5]
        assert sim.now == 0.0

    def test_cancel_then_fire_race_across_bucket_boundary(self):
        """Cancelling from an earlier bucket suppresses a later-bucket event."""
        sim = Simulator(seed=0, scheduler="calendar")
        width = sim._queue.bucket_width
        fired = []
        victim = sim.schedule(2.5 * width, lambda: fired.append("victim"))
        sim.schedule(0.5 * width, victim.cancel)
        sim.schedule(2.5 * width, lambda: fired.append("survivor"))
        sim.run_until(5 * width)
        assert fired == ["survivor"]
        assert victim.cancelled

    def test_overflow_migrates_into_wheel(self):
        """Far-future events beyond the horizon still fire, in order."""
        sim = Simulator(seed=0, scheduler="calendar", wheel_span=8)
        width = sim._queue.bucket_width
        horizon = 8 * width
        fired = []
        # Far beyond the horizon, scheduled out of order.
        for k in (40, 10, 25):
            sim.schedule(horizon * k, lambda k=k: fired.append(k))
        sim.schedule(0.5 * width, lambda: fired.append("near"))
        sim.run_until(horizon * 50)
        assert fired == ["near", 10, 25, 40]

    def test_overflow_only_queue_jumps_window(self):
        """An empty wheel with a distant head jumps instead of spinning."""
        sim = Simulator(seed=0, scheduler="calendar")
        fired = []
        sim.schedule(10_000.0, lambda: fired.append("far"))
        sim.run_until(10_000.0)
        assert fired == ["far"]
        assert sim.events_processed == 1

    def test_compaction_purges_tombstones_preserving_order(self):
        queue = EventQueue()
        handles = []
        for i in range(2000):
            handles.append(queue.push(i * 0.01, lambda: None, (i,)))
        # Cancel 90% of them through the tombstone path; compaction fires
        # whenever >=512 tombstones outnumber the remaining entries, so the
        # queue must end far below its 2000-entry peak (only the tail of
        # cancellations after the last sweep may still linger).
        for i, event in enumerate(handles):
            if i % 10:
                event.cancelled = True
                queue.note_cancelled()
        assert len(queue) < 1000
        fired = []
        while True:
            event = queue.pop()
            if event is None:
                break
            fired.append(event.args[0])
        assert fired == [i for i in range(2000) if i % 10 == 0]

    def test_len_tracks_live_and_cancelled_entries(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None, ()) for i in range(10)]
        assert len(queue) == 10
        for event in events[:3]:
            event.cancelled = True
            queue.note_cancelled()
        # Below the compaction threshold nothing is swept yet.
        assert len(queue) == 10
        for _ in range(7):
            queue.pop()
        assert len(queue) == 0

    def test_bad_scheduler_name_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(scheduler="fifo")

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            EventQueue(bucket_width=0.0)
        with pytest.raises(ValueError):
            EventQueue(wheel_span=0)

    def test_default_width_matches_probe_interval_fraction(self):
        assert DEFAULT_BUCKET_WIDTH == pytest.approx(
            SwimConfig().probe_interval / 20
        )


class TestTimerWheel:
    def test_same_interval_timers_share_one_class(self):
        sim = Simulator(seed=0)
        for _ in range(50):
            sim.call_every(1.0, lambda: None)
        for _ in range(30):
            sim.call_every(0.1, lambda: None)
        assert sim._wheel.class_count() == 2
        # 80 timers, but only one queued sentinel per interval class.
        assert len(sim._queue) == 2

    def test_set_interval_mid_flight_moves_class(self):
        sim = Simulator(seed=0)
        fired = []
        timer = sim.call_every(1.0, lambda: fired.append(sim.now))
        sim.run_until(2.5)
        assert fired == [1.0, 2.0]
        timer.set_interval(0.5)
        sim.run_until(4.1)
        # Next firing still honours the old arming (3.0), then 0.5 cadence.
        assert fired == [1.0, 2.0, 3.0, 3.5, 4.0]
        # The abandoned 1.0s class is reaped once its last member migrates.
        assert sim._wheel.class_count() == 1

    def test_idle_interval_classes_are_reaped(self):
        # ROADMAP-noted leak: a sim churning through many distinct intervals
        # (adaptive probe timers) must not accumulate empty classes.
        sim = Simulator(seed=0)
        for i in range(100):
            timer = sim.call_every(1.0 + i * 0.01, lambda: None)
            timer.stop()
        assert sim._wheel.class_count() == 0
        # Only cancelled tombstones remain queued (reclaimed by compaction).
        sim.run_until(2.0)
        assert len(sim._queue) == 0

    def test_adaptive_interval_churn_bounds_class_count(self):
        sim = Simulator(seed=0)
        fired = []
        timer = sim.call_every(1.0, lambda: fired.append(sim.now))
        # Adapt the interval every firing; each migration must reap the
        # class left behind, keeping exactly one live class.
        for i in range(50):
            sim.run_until(sim.now + timer.interval + 0.001)
            timer.set_interval(timer.interval * 1.01)
            assert sim._wheel.class_count() <= 2
        assert len(fired) >= 50
        assert sim._wheel.class_count() == 1

    def test_reaped_class_is_recreated_on_reuse(self):
        sim = Simulator(seed=0)
        fired = []
        first = sim.call_every(1.0, lambda: fired.append("first"))
        first.stop()
        assert sim._wheel.class_count() == 0
        sim.call_every(1.0, lambda: fired.append("second"))
        assert sim._wheel.class_count() == 1
        sim.run_until(1.0)
        assert fired == ["second"]

    def test_stop_from_own_callback(self):
        sim = Simulator(seed=0)
        fired = []
        timer = sim.call_every(0.5, lambda: (fired.append(sim.now), timer.stop()))
        sim.run_until(5.0)
        assert fired == [0.5]

    def test_stop_head_retargets_sentinel_to_next_member(self):
        sim = Simulator(seed=0)
        fired = []
        first = sim.call_every(1.0, lambda: fired.append("first"))
        second = sim.call_every(1.0, lambda: fired.append("second"))
        first.stop()  # first holds the earlier (time, seq); sentinel re-aims
        sim.run_until(1.0)
        assert fired == ["second"]

    def test_stopped_timer_cannot_restart(self):
        sim = Simulator(seed=0)
        timer = sim.call_every(1.0, lambda: None)
        timer.stop()
        with pytest.raises(SimulationError):
            timer.start()

    def test_wheel_off_matches_wheel_on_per_timer_state(self):
        traces = {}
        for coalesce in (False, True):
            sim = Simulator(seed=5, coalesce_timers=coalesce)
            fired = []
            sim.call_every(0.25, lambda: fired.append(round(sim.now, 9)))
            sim.run_until(2.0)
            traces[coalesce] = fired
        assert traces[False] == traces[True] != []
