"""Unit tests for regions, sites and latency derivation."""

import pytest

from repro.sim.topology import PAPER_REGIONS, Region, Site, Topology, geo_distance_km


class TestGeoDistance:
    def test_zero_distance_to_self(self):
        ohio = PAPER_REGIONS[0]
        assert geo_distance_km(ohio, ohio) == pytest.approx(0.0)

    def test_symmetry(self):
        a, b = PAPER_REGIONS[0], PAPER_REGIONS[2]
        assert geo_distance_km(a, b) == pytest.approx(geo_distance_km(b, a))

    def test_ohio_to_oregon_plausible(self):
        # Columbus OH to Portland OR is roughly 3,250 km great-circle.
        d = geo_distance_km(PAPER_REGIONS[0], PAPER_REGIONS[2])
        assert 2900 < d < 3600

    def test_ohio_to_montreal_plausible(self):
        d = geo_distance_km(PAPER_REGIONS[0], PAPER_REGIONS[1])
        assert 500 < d < 1100


class TestTopology:
    def test_intra_region_latency(self):
        topo = Topology()
        name = PAPER_REGIONS[0].name
        assert topo.latency(name, name) == topo.intra_region_latency

    def test_cross_region_latency_exceeds_intra(self):
        topo = Topology()
        a, b = PAPER_REGIONS[0].name, PAPER_REGIONS[2].name
        assert topo.latency(a, b) > topo.intra_region_latency

    def test_latency_symmetric(self):
        topo = Topology()
        a, b = PAPER_REGIONS[1].name, PAPER_REGIONS[3].name
        assert topo.latency(a, b) == pytest.approx(topo.latency(b, a))

    def test_coast_to_coast_latency_in_tens_of_ms(self):
        # EC2 us-east-2 <-> us-west-2 RTT is ~50-70 ms; one-way 25-35 ms.
        topo = Topology()
        latency = topo.latency("us-east-2", "us-west-2")
        assert 0.015 < latency < 0.045

    def test_unknown_region_rejected(self):
        topo = Topology()
        with pytest.raises(KeyError):
            topo.latency("nowhere", "us-east-2")
        with pytest.raises(KeyError):
            topo.region("nowhere")

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            Topology(regions=[])

    def test_max_distance_km(self):
        topo = Topology()
        names = [r.name for r in PAPER_REGIONS]
        all_span = topo.max_distance_km(names)
        east_span = topo.max_distance_km(["us-east-2", "ca-central-1"])
        assert all_span > east_span > 0
        assert topo.max_distance_km(["us-east-2"]) == 0.0

    def test_make_sites(self):
        topo = Topology()
        sites = topo.make_sites(per_region=2)
        assert len(sites) == 2 * len(PAPER_REGIONS)
        assert len({s.name for s in sites}) == len(sites)


class TestSite:
    def test_inherited_attributes(self):
        region = Region("r1", 0.0, 0.0)
        site = Site("edge-1", region, attributes={"sriov": True})
        inherited = site.inherited_attributes()
        assert inherited["site"] == "edge-1"
        assert inherited["region"] == "r1"
        assert inherited["sriov"] is True
