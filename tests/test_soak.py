"""Soak tests: continuous churn, then quiescence, then exactness.

The system-level invariant behind every FOCUS guarantee: whatever happened —
attribute random walks driving group moves, node crashes, node arrivals —
once the system quiesces, queries are exact against the live nodes' actual
state.
"""


from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, drain, run_query
from repro.workloads import WorkloadDriver


def expected_nodes(scenario, query):
    return {
        a.node_id
        for a in scenario.agents
        if a.running and query.matches(a.attributes())
    }


QUERIES = [
    Query([QueryTerm("ram_mb", lower=4096.0, upper=8191.0)], freshness_ms=0.0),
    Query([QueryTerm.at_most("cpu_percent", 30.0),
           QueryTerm.at_least("disk_gb", 20.0)], freshness_ms=0.0),
    Query([QueryTerm.at_least("vcpus", 4.0)], freshness_ms=0.0),
]


class TestAttributeChurn:
    def test_exact_after_sustained_dynamics(self):
        scenario = build_focus_cluster(48, seed=101, with_store=False)
        drain(scenario, 15.0)
        driver = WorkloadDriver(scenario.sim, scenario.agents, seed=1,
                                tick_interval=1.0)
        driver.start()
        drain(scenario, 60.0)  # a minute of continuous group moves
        driver.stop()
        drain(scenario, 20.0)  # quiesce: moves complete, reports land
        for query in QUERIES:
            response = run_query(scenario, query)
            assert set(response.node_ids) == expected_nodes(scenario, query)

    def test_moves_actually_happened(self):
        scenario = build_focus_cluster(24, seed=102, with_store=False)
        drain(scenario, 15.0)
        suggestions_before = scenario.service.metrics.counter("suggestions").value
        driver = WorkloadDriver(scenario.sim, scenario.agents, seed=2,
                                tick_interval=1.0)
        driver.start()
        drain(scenario, 45.0)
        driver.stop()
        moves = scenario.service.metrics.counter("suggestions").value - suggestions_before
        assert moves > 10, "the soak produced no churn; volatility too low"


class TestNodeChurn:
    def test_exact_after_crashes_and_arrivals(self):
        scenario = build_focus_cluster(32, seed=103, with_store=False)
        drain(scenario, 15.0)
        # Crash a third of the fleet over time.
        for index, agent in enumerate(scenario.agents[::3]):
            scenario.sim.schedule(index * 2.0, agent.stop)
        # And add newcomers while that is happening.
        from repro.core.agent import NodeAgent
        from repro.harness.scenarios import random_dynamic_attributes

        rng = scenario.sim.derive_rng("soak/arrivals")
        newcomers = []
        for index in range(6):
            agent = NodeAgent(
                scenario.sim,
                scenario.network,
                f"newcomer-{index}",
                scenario.network.topology.regions[index % 4].name,
                scenario.service.address,
                static={"arch": "x86", "service_type": "compute",
                        "project_id": "project-0"},
                dynamic=random_dynamic_attributes(scenario.config, rng),
                config=scenario.config,
            )
            newcomers.append(agent)
            scenario.sim.schedule(3.0 + index * 2.5, agent.start)
        scenario.agents.extend(newcomers)
        drain(scenario, 90.0)  # failure detection + reports settle
        for query in QUERIES:
            response = run_query(scenario, query)
            assert set(response.node_ids) == expected_nodes(scenario, query)

    def test_graceful_shutdowns_clean_everywhere(self):
        scenario = build_focus_cluster(16, seed=104, with_store=False)
        drain(scenario, 15.0)
        leavers = scenario.agents[:4]
        for agent in leavers:
            agent.shutdown()
        drain(scenario, 30.0)
        service = scenario.service
        for agent in leavers:
            assert agent.node_id not in service.registrar.nodes
            assert not service.dgm.groups.groups_of_node(agent.node_id)
        response = run_query(
            scenario, Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=0.0)
        )
        assert len(response.matches) == 12


class TestCombinedChurn:
    def test_everything_at_once(self):
        scenario = build_focus_cluster(40, seed=105, with_store=False)
        drain(scenario, 15.0)
        driver = WorkloadDriver(scenario.sim, scenario.agents, seed=3,
                                tick_interval=1.0)
        driver.start()
        for index, agent in enumerate(scenario.agents[::5]):
            scenario.sim.schedule(5.0 + index * 3.0, agent.stop)
        drain(scenario, 50.0)
        driver.stop()
        drain(scenario, 30.0)
        for query in QUERIES:
            response = run_query(scenario, query)
            assert set(response.node_ids) == expected_nodes(scenario, query)
