"""Integration tests for quorum reads/writes against the replica cluster."""

import pytest

from repro.errors import QuorumError
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin
from repro.store import StoreCluster


class Host(Process, RpcMixin):
    def __init__(self, sim, network, region):
        Process.__init__(self, sim, network, "host", region)
        self.init_rpc()


@pytest.fixture
def cluster(sim, network):
    return StoreCluster(sim, network, num_replicas=3)


@pytest.fixture
def client(sim, network, regions, cluster):
    host = Host(sim, network, regions[0])
    host.start()
    return cluster.client_for(host)


def run_put(sim, client, table, key, value):
    done = []
    client.put(table, key, value, on_done=lambda: done.append(True),
               on_error=lambda e: done.append(e))
    sim.run_until(sim.now + 3.0)
    assert done == [True], done


def run_get(sim, client, table, key):
    box = []
    client.get(table, key, box.append, on_error=box.append)
    sim.run_until(sim.now + 3.0)
    assert len(box) == 1
    return box[0]


class TestReadWrite:
    def test_put_then_get(self, sim, client):
        run_put(sim, client, "t", "k", {"v": 1})
        row = run_get(sim, client, "t", "k")
        assert row.value == {"v": 1}

    def test_get_missing_returns_none(self, sim, client):
        assert run_get(sim, client, "t", "nope") is None

    def test_overwrite_returns_newest(self, sim, client):
        run_put(sim, client, "t", "k", {"v": 1})
        run_put(sim, client, "t", "k", {"v": 2})
        assert run_get(sim, client, "t", "k").value == {"v": 2}

    def test_delete(self, sim, client):
        run_put(sim, client, "t", "k", {"v": 1})
        done = []
        client.delete("t", "k", on_done=lambda: done.append(True))
        sim.run_until(sim.now + 3.0)
        assert done == [True]
        assert run_get(sim, client, "t", "k") is None

    def test_scan_merges_replicas(self, sim, client):
        for i in range(10):
            run_put(sim, client, "t", f"k{i}", {"i": i})
        rows = []
        client.scan("t", rows.extend)
        sim.run_until(sim.now + 3.0)
        assert len(rows) == 10

    def test_scan_limit(self, sim, client):
        for i in range(10):
            run_put(sim, client, "t", f"k{i}", {"i": i})
        box = []
        client.scan("t", box.append, limit=4)
        sim.run_until(sim.now + 3.0)
        assert len(box[0]) == 4


class TestFaultTolerance:
    def test_survives_one_replica_crash(self, sim, client, cluster):
        run_put(sim, client, "t", "k", {"v": 1})
        cluster.replicas[0].stop()
        run_put(sim, client, "t", "k2", {"v": 2})
        assert run_get(sim, client, "t", "k2").value == {"v": 2}

    def test_quorum_error_with_two_crashes(self, sim, client, cluster):
        cluster.replicas[0].stop()
        cluster.replicas[1].stop()
        errors = []
        client.put("t", "k", {"v": 1}, on_done=lambda: errors.append("done"),
                   on_error=errors.append)
        sim.run_until(sim.now + 5.0)
        assert len(errors) == 1
        assert isinstance(errors[0], QuorumError)

    def test_read_repair_heals_stale_replica(self, sim, network, client, cluster):
        run_put(sim, client, "t", "k", {"v": 1})
        # Knock a replica out while the value is updated, then revive it.
        lagging = cluster.replicas[2]
        lagging.stop()
        run_put(sim, client, "t", "k", {"v": 2})
        # Restart: the replica kept its tables (process object retained).
        lagging.running = False
        lagging.start()
        # A read reconciles and repairs.
        row = run_get(sim, client, "t", "k")
        assert row.value == {"v": 2}
        sim.run_until(sim.now + 3.0)
        local = lagging.tables["t"].get("k")
        assert local is not None and local.value == {"v": 2}

    def test_quorum_config_validation(self, sim, network, regions, cluster):
        host = Host(sim, network, regions[1])
        host.address = "host2"
        host.start()
        with pytest.raises(ValueError):
            cluster.client_for(host, replication_factor=2, write_quorum=3)


class TestClusterFactory:
    def test_replicas_spread_across_regions(self, sim, network):
        cluster = StoreCluster(sim, network, num_replicas=4, name="s2")
        regions = {r.region for r in cluster.replicas}
        assert len(regions) == 4

    def test_stop_all(self, sim, network):
        cluster = StoreCluster(sim, network, num_replicas=2, name="s3")
        cluster.stop()
        assert all(not r.running for r in cluster.replicas)
