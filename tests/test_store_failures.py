"""Store degraded paths: quorum errors, stale reads, hints, partial scans."""

import pytest

from repro.errors import QuorumError
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin
from repro.store import StoreCluster


class Host(Process, RpcMixin):
    """Test host issuing quorum operations."""

    def __init__(self, sim, network, region):
        Process.__init__(self, sim, network, "host", region)
        self.init_rpc()


@pytest.fixture
def setup(sim, network, regions):
    cluster = StoreCluster(sim, network, num_replicas=3)
    host = Host(sim, network, regions[0])
    host.start()
    client = cluster.client_for(host)
    return cluster, host, client


def put(sim, client, key, value, **kwargs):
    done = []
    client.put("t", key, {"v": value}, on_done=lambda: done.append(True),
               on_error=done.append, **kwargs)
    sim.run_until(sim.now + 4.0)
    return done


def block_replicas(network, host, replicas):
    for replica in replicas:
        network.block(host.address, replica.address)


class TestQuorumErrors:
    def test_write_quorum_unreachable_propagates_error(self, sim, network, setup):
        cluster, host, client = setup
        block_replicas(network, host, cluster.replicas[:2])
        outcome = put(sim, client, "k", 1)
        assert len(outcome) == 1
        assert isinstance(outcome[0], QuorumError)

    def test_read_quorum_unreachable_propagates_error(self, sim, network, setup):
        cluster, host, client = setup
        put(sim, client, "k", 1)
        block_replicas(network, host, cluster.replicas[:2])
        errors = []
        client.get("t", "k", on_done=lambda row: pytest.fail("quorum met?"),
                   on_error=errors.append)
        sim.run_until(sim.now + 4.0)
        assert len(errors) == 1
        assert isinstance(errors[0], QuorumError)

    def test_delete_quorum_unreachable_propagates_error(self, sim, network, setup):
        cluster, host, client = setup
        put(sim, client, "k", 1)
        block_replicas(network, host, cluster.replicas[:2])
        errors = []
        client.delete("t", "k", on_error=errors.append)
        sim.run_until(sim.now + 4.0)
        assert len(errors) == 1 and isinstance(errors[0], QuorumError)


class TestStaleReads:
    def test_stale_fallback_returns_best_available(self, sim, network, setup):
        cluster, host, client = setup
        put(sim, client, "k", 7)
        block_replicas(network, host, cluster.replicas[:2])
        fresh, stale = [], []
        client.get("t", "k", on_done=fresh.append, on_stale=stale.append)
        sim.run_until(sim.now + 4.0)
        assert fresh == []
        assert len(stale) == 1
        # The reachable replica had the value: stale but correct.
        assert stale[0] is not None and stale[0].value == {"v": 7}
        assert network.metrics.counter("store.stale_reads").value == 1

    def test_stale_fallback_with_nothing_reachable_yields_none(
        self, sim, network, setup
    ):
        cluster, host, client = setup
        put(sim, client, "k", 7)
        block_replicas(network, host, cluster.replicas)
        stale = []
        client.get("t", "k", on_done=lambda row: pytest.fail("no quorum"),
                   on_stale=stale.append)
        sim.run_until(sim.now + 4.0)
        assert stale == [None]

    def test_quorum_read_still_prefers_on_done(self, sim, network, setup):
        cluster, host, client = setup
        put(sim, client, "k", 7)
        fresh, stale = [], []
        client.get("t", "k", on_done=fresh.append, on_stale=stale.append)
        sim.run_until(sim.now + 4.0)
        assert len(fresh) == 1 and stale == []

    def test_read_repair_skips_blocked_replica_until_heal(self, sim, network, setup):
        cluster, host, client = setup
        put(sim, client, "k", 1)
        isolated = cluster.replicas[1]
        network.block(host.address, isolated.address)
        put(sim, client, "k", 2)  # quorum of 2; isolated replica stays at v1
        fresh = []
        client.get("t", "k", on_done=fresh.append)
        sim.run_until(sim.now + 4.0)
        assert fresh[0].value == {"v": 2}
        # Repair writes to the blocked replica were dropped: still stale.
        assert isolated.tables["t"].get("k").value == {"v": 1}
        network.unblock(host.address, isolated.address)
        client.get("t", "k", on_done=fresh.append)
        sim.run_until(sim.now + 4.0)
        assert isolated.tables["t"].get("k").value == {"v": 2}


class TestHintedHandoff:
    def test_hint_replayed_when_replica_returns(self, sim, network, setup):
        cluster, host, client = setup
        isolated = cluster.replicas[1]
        network.block(host.address, isolated.address)
        outcome = put(sim, client, "k", 5)
        assert outcome == [True]  # quorum met without the blocked replica
        assert len(client.hints) == 1
        table = isolated.tables.get("t")
        assert table is None or table.get("k") is None
        network.unblock(host.address, isolated.address)
        sim.run_until(sim.now + 3 * client.hint_replay_interval)
        assert client.hints == []
        assert isolated.tables["t"].get("k").value == {"v": 5}
        assert network.metrics.counter("store.hints_replayed").value == 1

    def test_hint_replay_is_lww_idempotent(self, sim, network, setup):
        """A newer write during the outage must not be clobbered by replay."""
        cluster, host, client = setup
        isolated = cluster.replicas[1]
        network.block(host.address, isolated.address)
        put(sim, client, "k", 1)  # hinted for the blocked replica
        network.unblock(host.address, isolated.address)
        put(sim, client, "k", 2)  # newer write reaches everyone
        sim.run_until(sim.now + 3 * client.hint_replay_interval)
        assert isolated.tables["t"].get("k").value == {"v": 2}

    def test_hints_can_be_disabled(self, sim, network, setup):
        cluster, host, _ = setup
        client = cluster.client_for(host, hinted_handoff=False)
        network.block(host.address, cluster.replicas[1].address)
        put(sim, client, "k", 5)
        assert client.hints == []

    def test_hint_capacity_bounds_the_queue(self, sim, network, setup):
        cluster, host, _ = setup
        client = cluster.client_for(host, hint_capacity=2)
        network.block(host.address, cluster.replicas[1].address)
        for i in range(5):
            put(sim, client, f"k{i}", i)
        assert len(client.hints) <= 2
        assert network.metrics.counter("store.hints_dropped").value >= 1


class TestPartialScans:
    def test_partial_scan_merges_reachable_replicas(self, sim, network, setup):
        cluster, host, client = setup
        for i in range(6):
            put(sim, client, f"k{i}", i)
        block_replicas(network, host, cluster.replicas[:1])
        rows, errors = [], []
        client.scan("t", rows.extend, on_error=errors.append, allow_partial=True)
        sim.run_until(sim.now + 6.0)
        assert errors == []
        # Quorum writes reached >= 2 replicas, so the two reachable ones
        # still cover every key between them.
        assert {r.value["v"] for r in rows} == set(range(6))
        assert network.metrics.counter("store.partial_scans").value == 1

    def test_strict_scan_fails_when_a_replica_is_unreachable(
        self, sim, network, setup
    ):
        cluster, host, client = setup
        put(sim, client, "k", 1)
        block_replicas(network, host, cluster.replicas[:1])
        rows, errors = [], []
        client.scan("t", rows.extend, on_error=errors.append)
        sim.run_until(sim.now + 6.0)
        assert rows == []
        assert len(errors) == 1 and isinstance(errors[0], QuorumError)


class TestReplicaWipe:
    def test_wipe_loses_state_and_read_repair_restores_it(
        self, sim, network, setup
    ):
        cluster, host, client = setup
        put(sim, client, "k", 9)
        victim = cluster.replicas[0]
        victim.stop()
        victim.wipe()
        victim.restart()
        assert victim.tables == {}
        fresh = []
        client.get("t", "k", on_done=fresh.append)
        sim.run_until(sim.now + 4.0)
        assert fresh[0].value == {"v": 9}  # quorum still answers
        sim.run_until(sim.now + 3.0)  # read repair repopulates the wiped node
        assert victim.tables["t"].get("k").value == {"v": 9}
