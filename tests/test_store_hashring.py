"""Unit and property tests for the consistent hash ring."""

import pytest
from hypothesis import given, strategies as st

from repro.store import ConsistentHashRing


def ring_with(nodes):
    ring = ConsistentHashRing()
    for node in nodes:
        ring.add_node(node)
    return ring


class TestBasics:
    def test_empty_ring(self):
        ring = ConsistentHashRing()
        assert ring.nodes_for("key", 3) == []
        with pytest.raises(ValueError):
            ring.primary_for("key")

    def test_single_node_owns_everything(self):
        ring = ring_with(["a"])
        for key in ("x", "y", "z"):
            assert ring.primary_for(key) == "a"

    def test_nodes_for_distinct(self):
        ring = ring_with(["a", "b", "c", "d"])
        replicas = ring.nodes_for("some-key", 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_count_capped_at_ring_size(self):
        ring = ring_with(["a", "b"])
        assert len(ring.nodes_for("k", 5)) == 2

    def test_duplicate_add_rejected(self):
        ring = ring_with(["a"])
        with pytest.raises(ValueError):
            ring.add_node("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError):
            ring_with(["a"]).remove_node("b")

    def test_remove_restores_consistency(self):
        ring = ring_with(["a", "b", "c"])
        ring.remove_node("b")
        assert ring.nodes == ["a", "c"]
        for key in ("k1", "k2", "k3"):
            assert "b" not in ring.nodes_for(key, 2)


class TestPlacementProperties:
    @given(st.text(min_size=1, max_size=30))
    def test_placement_deterministic(self, key):
        r1 = ring_with(["a", "b", "c", "d"])
        r2 = ring_with(["a", "b", "c", "d"])
        assert r1.nodes_for(key, 3) == r2.nodes_for(key, 3)

    @given(st.text(min_size=1, max_size=30))
    def test_removal_only_moves_affected_keys(self, key):
        """Removing a node never changes placement of keys it didn't own."""
        before = ring_with(["a", "b", "c", "d"])
        primary = before.primary_for(key)
        victim = next(n for n in ("a", "b", "c", "d") if n != primary)
        after = ring_with(["a", "b", "c", "d"])
        after.remove_node(victim)
        assert after.primary_for(key) == primary

    def test_distribution_roughly_balanced(self):
        ring = ring_with([f"n{i}" for i in range(4)])
        counts = {f"n{i}": 0 for i in range(4)}
        for i in range(4000):
            counts[ring.primary_for(f"key-{i}")] += 1
        for count in counts.values():
            assert 400 < count < 2200  # no pathological imbalance
