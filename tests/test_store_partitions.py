"""Store behaviour across network partitions: quorum masks, repair heals."""

import pytest

from repro.sim.process import Process
from repro.sim.rpc import RpcMixin
from repro.store import StoreCluster


class Host(Process, RpcMixin):
    """Test host issuing quorum operations."""

    def __init__(self, sim, network, region):
        Process.__init__(self, sim, network, "host", region)
        self.init_rpc()


@pytest.fixture
def setup(sim, network, regions):
    cluster = StoreCluster(sim, network, num_replicas=3)
    host = Host(sim, network, regions[0])
    host.start()
    client = cluster.client_for(host)
    return cluster, host, client


def put(sim, client, key, value):
    done = []
    client.put("t", key, {"v": value}, on_done=lambda: done.append(True),
               on_error=done.append)
    sim.run_until(sim.now + 4.0)
    assert done == [True], done


def get(sim, client, key):
    box = []
    client.get("t", key, box.append, on_error=box.append)
    sim.run_until(sim.now + 4.0)
    assert len(box) == 1
    return box[0]


class TestPartitionedWrites:
    def test_write_succeeds_with_one_replica_partitioned(self, sim, network, setup):
        cluster, host, client = setup
        isolated = cluster.replicas[1]
        network.block(host.address, isolated.address)
        put(sim, client, "k", 1)
        row = get(sim, client, "k")
        assert row.value == {"v": 1}

    def test_partitioned_replica_misses_the_write(self, sim, network, setup):
        cluster, host, client = setup
        isolated = cluster.replicas[1]
        network.block(host.address, isolated.address)
        put(sim, client, "k", 1)
        table = isolated.tables.get("t")
        assert table is None or table.get("k") is None

    def test_read_repair_after_heal(self, sim, network, setup):
        cluster, host, client = setup
        isolated = cluster.replicas[1]
        network.block(host.address, isolated.address)
        put(sim, client, "k", 1)
        network.unblock(host.address, isolated.address)
        # A read reconciles (quorum returns the value) and repairs the
        # stale replica in the background.
        row = get(sim, client, "k")
        assert row.value == {"v": 1}
        sim.run_until(sim.now + 3.0)
        local = isolated.tables["t"].get("k")
        assert local is not None and local.value == {"v": 1}

    def test_newest_wins_across_partition(self, sim, network, setup):
        """Write v1 everywhere; partition; write v2 to the majority; heal;
        reads must return v2 regardless of which replicas answer first."""
        cluster, host, client = setup
        put(sim, client, "k", 1)
        isolated = cluster.replicas[2]
        network.block(host.address, isolated.address)
        put(sim, client, "k", 2)
        network.unblock(host.address, isolated.address)
        for _ in range(3):
            assert get(sim, client, "k").value == {"v": 2}


class TestScanAfterHeal:
    def test_scan_merges_diverged_replicas(self, sim, network, setup):
        cluster, host, client = setup
        isolated = cluster.replicas[0]
        network.block(host.address, isolated.address)
        for index in range(6):
            put(sim, client, f"k{index}", index)
        network.unblock(host.address, isolated.address)
        rows = []
        client.scan("t", rows.extend)
        sim.run_until(sim.now + 4.0)
        assert len(rows) == 6
        assert {r.value["v"] for r in rows} == set(range(6))
