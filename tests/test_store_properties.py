"""Property-based tests for the store's convergence guarantees."""

from hypothesis import given, strategies as st

from repro.store.hashring import ConsistentHashRing
from repro.store.table import Table

keys = st.sampled_from(["k1", "k2", "k3"])
timestamps = st.floats(min_value=0.0, max_value=100.0)
ops = st.lists(
    st.tuples(keys, st.integers(0, 99), timestamps), min_size=1, max_size=40
)


class TestLastWriteWinsConvergence:
    @given(ops)
    def test_order_independent(self, operations):
        """Applying the same writes in any order converges to the same
        table state — the property quorum replication relies on."""
        forward = Table("t")
        backward = Table("t")
        for key, value, ts in operations:
            forward.put(key, {"v": value}, ts)
        for key, value, ts in reversed(operations):
            backward.put(key, {"v": value}, ts)
        for key in ("k1", "k2", "k3"):
            a, b = forward.get(key), backward.get(key)
            if a is None or b is None:
                assert a is b is None
                continue
            assert a.timestamp == b.timestamp
            # At equal timestamps ties may differ in value; with distinct
            # timestamps the value must agree.
            distinct = len({ts for k, _, ts in operations if k == key}) == len(
                [ts for k, _, ts in operations if k == key]
            )
            if distinct:
                assert a.value == b.value

    @given(ops, ops)
    def test_merge_is_commutative(self, left_ops, right_ops):
        """Merging replica A into B equals merging B into A."""

        def build(operations):
            table = Table("t")
            for key, value, ts in operations:
                table.put(key, {"v": value}, ts)
            return table

        def merge(target, source):
            for row in source.scan():
                target.put(row.key, row.value, row.timestamp)

        ab = build(left_ops)
        merge(ab, build(right_ops))
        ba = build(right_ops)
        merge(ba, build(left_ops))
        for key in ("k1", "k2", "k3"):
            a, b = ab.get(key), ba.get(key)
            if a is None or b is None:
                assert a is b is None
            else:
                assert a.timestamp == b.timestamp


class TestRingProperties:
    @given(st.text(min_size=1, max_size=24))
    def test_replica_sets_shrink_gracefully(self, key):
        """Removing one node leaves the other replicas of a key in place."""
        ring = ConsistentHashRing()
        for node in ("a", "b", "c", "d", "e"):
            ring.add_node(node)
        replicas_before = ring.nodes_for(key, 3)
        victim = replicas_before[0]
        ring.remove_node(victim)
        replicas_after = ring.nodes_for(key, 3)
        # The surviving members of the old replica set are still replicas.
        for node in replicas_before[1:]:
            assert node in replicas_after
        assert victim not in replicas_after
        assert len(replicas_after) == 3

    @given(st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=6,
                    unique=True))
    def test_every_key_placed_when_nonempty(self, nodes):
        ring = ConsistentHashRing()
        for node in nodes:
            ring.add_node(node)
        assert ring.primary_for("anything") in nodes
