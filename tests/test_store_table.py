"""Unit tests for the table/row model (last-write-wins)."""

from repro.store.table import Row, Table


class TestPut:
    def test_put_and_get(self):
        t = Table("t")
        assert t.put("k", {"v": 1}, timestamp=1.0)
        assert t.get("k").value == {"v": 1}

    def test_newer_write_wins(self):
        t = Table("t")
        t.put("k", {"v": 1}, timestamp=1.0)
        assert t.put("k", {"v": 2}, timestamp=2.0)
        assert t.get("k").value == {"v": 2}

    def test_stale_write_rejected(self):
        t = Table("t")
        t.put("k", {"v": 2}, timestamp=2.0)
        assert not t.put("k", {"v": 1}, timestamp=1.0)
        assert t.get("k").value == {"v": 2}

    def test_equal_timestamp_applies(self):
        t = Table("t")
        t.put("k", {"v": 1}, timestamp=1.0)
        assert t.put("k", {"v": 2}, timestamp=1.0)


class TestDelete:
    def test_delete_existing(self):
        t = Table("t")
        t.put("k", {"v": 1}, timestamp=1.0)
        assert t.delete("k", timestamp=2.0)
        assert t.get("k") is None

    def test_delete_missing_returns_false(self):
        assert not Table("t").delete("k", timestamp=1.0)

    def test_stale_delete_rejected(self):
        t = Table("t")
        t.put("k", {"v": 1}, timestamp=5.0)
        assert not t.delete("k", timestamp=1.0)
        assert "k" in t


class TestScan:
    def test_scan_all(self):
        t = Table("t")
        for i in range(5):
            t.put(f"k{i}", {"i": i}, timestamp=1.0)
        assert len(t.scan()) == 5

    def test_scan_predicate(self):
        t = Table("t")
        for i in range(10):
            t.put(f"k{i}", {"i": i}, timestamp=1.0)
        rows = t.scan(predicate=lambda r: r.value["i"] >= 7)
        assert sorted(r.value["i"] for r in rows) == [7, 8, 9]

    def test_scan_limit(self):
        t = Table("t")
        for i in range(10):
            t.put(f"k{i}", {"i": i}, timestamp=1.0)
        assert len(t.scan(limit=3)) == 3


class TestRowWire:
    def test_roundtrip(self):
        row = Row("k", {"a": 1}, 3.5)
        restored = Row.from_wire(row.to_wire())
        assert restored.key == "k"
        assert restored.value == {"a": 1}
        assert restored.timestamp == 3.5

    def test_iteration_and_keys(self):
        t = Table("t")
        t.put("a", {}, 1.0)
        t.put("b", {}, 1.0)
        assert sorted(t.keys()) == ["a", "b"]
        assert len(list(t)) == 2
        assert len(t.items()) == 2
