"""Tests for populations, dynamics, query generators and the trace."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.attributes import openstack_schema
from repro.core.query import Query
from repro.sim import Simulator
from repro.workloads import (
    ChameleonTraceGenerator,
    QueryWorkload,
    WorkloadDriver,
    node_spec_factory,
    placement_query,
)
from repro.workloads.chameleon import PAPER_ACCELERATION
from repro.workloads.dynamics import AttributeDynamics, default_dynamics
from repro.workloads.querygen import grouped_placement_query


class TestPopulation:
    def test_deterministic_per_seed(self):
        f1 = node_spec_factory(seed=1)
        f2 = node_spec_factory(seed=1)
        assert f1(5, "us-east-2") == f2(5, "us-east-2")

    def test_seed_changes_population(self):
        f1 = node_spec_factory(seed=1)
        f2 = node_spec_factory(seed=2)
        assert f1(5, "us-east-2")["dynamic"] != f2(5, "us-east-2")["dynamic"]

    def test_values_within_schema_ranges(self):
        schema = openstack_schema()
        factory = node_spec_factory(seed=3, schema=schema)
        for i in range(50):
            spec = factory(i, "us-east-2")
            for name, value in spec["dynamic"].items():
                attr = schema.get(name)
                assert attr.min_value <= value <= attr.max_value

    def test_vcpus_integral(self):
        factory = node_spec_factory(seed=4)
        for i in range(20):
            assert factory(i, "r")["dynamic"]["vcpus"] == int(
                factory(i, "r")["dynamic"]["vcpus"]
            )


class TestDynamics:
    @given(st.floats(min_value=0, max_value=100), st.integers(0, 1000))
    def test_step_stays_in_bounds(self, value, seed):
        dynamics = AttributeDynamics("x", volatility=0.2, min_value=0, max_value=100)
        rng = random.Random(seed)
        for _ in range(20):
            value = dynamics.step(value, rng)
            assert 0 <= value <= 100

    def test_driver_changes_values(self):
        class FakeNode:
            running = True

            def __init__(self):
                self.dynamic = {"cpu_percent": 50.0}

            def set_attribute(self, name, value):
                self.dynamic[name] = value

        sim = Simulator(seed=1)
        nodes = [FakeNode() for _ in range(5)]
        driver = WorkloadDriver(sim, nodes, dynamics=default_dynamics(), seed=1)
        driver.start()
        sim.run_until(10.0)
        assert driver.ticks == 10
        assert any(n.dynamic["cpu_percent"] != 50.0 for n in nodes)

    def test_driver_skips_stopped_nodes(self):
        class DeadNode:
            running = False
            dynamic = {"cpu_percent": 50.0}

            def set_attribute(self, name, value):
                raise AssertionError("must not touch stopped nodes")

        sim = Simulator(seed=1)
        driver = WorkloadDriver(sim, [DeadNode()], seed=1)
        driver.start()
        sim.run_until(5.0)

    def test_double_start_rejected(self):
        sim = Simulator(seed=1)
        driver = WorkloadDriver(sim, [], seed=1)
        driver.start()
        with pytest.raises(RuntimeError):
            driver.start()

    def test_stop(self):
        sim = Simulator(seed=1)
        driver = WorkloadDriver(sim, [], seed=1)
        driver.start()
        sim.run_until(3.0)
        driver.stop()
        sim.run_until(10.0)
        assert driver.ticks == 3


class TestQueryGenerators:
    def test_placement_query_valid(self):
        rng = random.Random(1)
        for _ in range(50):
            query = placement_query(rng)
            assert query.term("ram_mb").lower >= 512
            assert query.limit == 10

    def test_grouped_placement_single_family(self):
        rng = random.Random(2)
        for _ in range(50):
            query = grouped_placement_query(rng)
            ram = query.term("ram_mb")
            assert ram.upper - ram.lower < 2048.0

    def test_workload_mix_deterministic(self):
        a = QueryWorkload(seed=5).batch(20)
        b = QueryWorkload(seed=5).batch(20)
        assert [q.to_json() for q in a] == [q.to_json() for q in b]

    def test_workload_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            QueryWorkload(weights={"bogus": 1.0})

    def test_workload_covers_categories(self):
        workload = QueryWorkload(
            seed=6,
            weights={"placement": 0.25, "service_status": 0.25,
                     "tenant_report": 0.25, "hot_spot": 0.25},
        )
        names = set()
        for query in workload.batch(100):
            names.update(t.name for t in query.terms)
        assert "ram_mb" in names
        assert "service_type" in names
        assert "project_id" in names
        assert "cpu_percent" in names


class TestChameleonTrace:
    def test_deterministic(self):
        a = ChameleonTraceGenerator(seed=1).generate(100)
        b = ChameleonTraceGenerator(seed=1).generate(100)
        assert a == b

    def test_events_time_ordered(self):
        events = ChameleonTraceGenerator(seed=2).generate(500)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_mean_rate_matches_paper(self):
        """75K events / 10 months at 15,000x is ~40+ queries/second (§X-C)."""
        generator = ChameleonTraceGenerator(seed=3)
        assert 35 <= generator.mean_rate() <= 50

    def test_empirical_rate_near_nominal(self):
        generator = ChameleonTraceGenerator(seed=4)
        events = generator.generate(3000)
        span = events[-1].time - events[0].time
        empirical = len(events) / span * PAPER_ACCELERATION
        assert 0.4 * generator.mean_rate() < empirical < 3.0 * generator.mean_rate()

    def test_to_query(self):
        event = ChameleonTraceGenerator(seed=5).generate(1)[0]
        query = event.to_query(limit=7)
        assert isinstance(query, Query)
        assert query.limit == 7
        assert query.term("ram_mb").lower == event.ram_mb

    def test_accelerated_queries(self):
        pairs = ChameleonTraceGenerator(seed=6).accelerated_queries(50)
        times = [t for t, _ in pairs]
        assert times == sorted(times)
        assert times[-1] < 60  # 50 events arrive within a minute accelerated

    def test_demands_from_flavor_set(self):
        from repro.workloads.querygen import FLAVORS

        events = ChameleonTraceGenerator(seed=7).generate(200)
        flavors = set(FLAVORS)
        assert all((e.ram_mb, e.disk_gb, e.vcpus) in flavors for e in events)
